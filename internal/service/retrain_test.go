package service

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mood/internal/clock"
	"mood/internal/core"
	"mood/internal/trace"
)

// markedProtector admits everything and stamps each fragment's mechanism
// with its generation, so tests can see which engine handled an upload.
// Pseudonyms are numbered per call so fragments stay distinct in the
// published dataset.
type markedProtector struct {
	mark  string
	mu    sync.Mutex
	calls int
}

func (m *markedProtector) Protect(t trace.Trace) (core.Result, error) {
	m.mu.Lock()
	m.calls++
	n := m.calls
	m.mu.Unlock()
	return core.Result{
		User:         t.User,
		TotalRecords: t.Len(),
		Pieces: []core.Piece{{
			Trace:         t.WithUser(fmt.Sprintf("anon-%s-%d", m.mark, n)),
			Mechanism:     m.mark,
			SourceRecords: t.Len(),
		}},
	}, nil
}

// ownerAuditor condemns every fragment whose owner has the configured
// prefix — a stand-in for "the retrained attacks now re-identify this
// user's published data".
type ownerAuditor struct {
	prefix string
}

func (a ownerAuditor) ReIdentifies(t trace.Trace, user string) (bool, string) {
	if strings.HasPrefix(user, a.prefix) {
		return true, "owner-auditor"
	}
	return false, ""
}

func newRetrainServer(t *testing.T, rt Retrainer, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	opts = append([]Option{WithRetrainer(rt, 0)}, opts...)
	srv, err := New(&markedProtector{mark: "gen0"}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func TestRetrainSwapsProtectorAndQuarantines(t *testing.T) {
	var gen int
	var mu sync.Mutex
	var seenHistory []trace.Trace
	rt := RetrainerFunc(func(history []trace.Trace) (Protector, Auditor, error) {
		mu.Lock()
		gen++
		g := gen
		seenHistory = history
		mu.Unlock()
		return &markedProtector{mark: fmt.Sprintf("gen%d", g)}, ownerAuditor{prefix: "drift-"}, nil
	})
	_, hs := newRetrainServer(t, rt)
	c := NewClient(hs.URL)

	if _, err := c.Upload(trace.New("alice", sampleRecords(10))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upload(trace.New("drift-bob", sampleRecords(8))); err != nil {
		t.Fatal(err)
	}

	// Both fragments published, both admitted by the startup engine.
	d, err := c.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 2 {
		t.Fatalf("published %d fragments before retrain, want 2", d.NumUsers())
	}

	report, err := c.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if report.Audited != 2 || report.Quarantined != 1 {
		t.Fatalf("report = %+v, want audited 2, quarantined 1", report)
	}
	if report.HistoryUsers != 2 || report.HistoryRecords != 18 {
		t.Fatalf("report history = %d users / %d records, want 2/18", report.HistoryUsers, report.HistoryRecords)
	}
	mu.Lock()
	for _, h := range seenHistory {
		if !h.Sorted() {
			t.Errorf("history trace %s not time-sorted", h.User)
		}
	}
	mu.Unlock()

	// drift-bob's fragment left the dataset; alice's stayed.
	d, err = c.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 1 || !strings.HasPrefix(d.Traces[0].User, "anon-gen0-") {
		t.Fatalf("dataset after quarantine = %v", d.Users())
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.QuarantinedTraces != 1 || st.RecordsQuarantined != 8 {
		t.Fatalf("stats quarantine = %d traces / %d records, want 1/8", st.QuarantinedTraces, st.RecordsQuarantined)
	}
	if st.PublishedTraces != 1 || st.Retrains != 1 {
		t.Fatalf("stats = %+v", st)
	}
	us, err := c.UserStats("drift-bob")
	if err != nil {
		t.Fatal(err)
	}
	if us.PiecesQuarantined != 1 || us.RecordsQuarantined != 8 {
		t.Fatalf("drift-bob stats = %+v", us)
	}

	// Uploads now run on the swapped engine.
	resp, err := c.Upload(trace.New("carol", sampleRecords(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Mechanisms) != 1 || resp.Mechanisms[0] != "gen1" {
		t.Fatalf("post-swap upload used %v, want gen1", resp.Mechanisms)
	}
}

func TestRetrainHotSwapHasNoUploadDowntime(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	rt := RetrainerFunc(func(history []trace.Trace) (Protector, Auditor, error) {
		close(entered)
		<-block
		return &markedProtector{mark: "gen1"}, nil, nil
	})
	srv, hs := newRetrainServer(t, rt)
	c := NewClient(hs.URL)

	if _, err := c.Upload(trace.New("alice", sampleRecords(3))); err != nil {
		t.Fatal(err)
	}

	retrained := make(chan error, 1)
	go func() {
		_, err := srv.Retrain()
		retrained <- err
	}()
	<-entered

	// The retrainer is mid-rebuild: uploads must keep flowing on the old
	// engine, not wait for the swap.
	for i := 0; i < 5; i++ {
		resp, err := c.Upload(trace.New(fmt.Sprintf("user-%d", i), sampleRecords(2)))
		if err != nil {
			t.Fatalf("upload during retrain: %v", err)
		}
		if resp.Mechanisms[0] != "gen0" {
			t.Fatalf("upload during retrain used %v, want gen0", resp.Mechanisms)
		}
	}

	close(block)
	if err := <-retrained; err != nil {
		t.Fatal(err)
	}
	resp, err := c.Upload(trace.New("late", sampleRecords(2)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mechanisms[0] != "gen1" {
		t.Fatalf("upload after retrain used %v, want gen1", resp.Mechanisms)
	}
}

func TestRetrainEndpointWithoutRetrainerIs404(t *testing.T) {
	_, hs := newTestServer(t)
	c := NewClient(hs.URL)
	if _, err := c.Retrain(); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("retrain without retrainer: %v", err)
	}
}

func TestRetrainErrorKeepsServing(t *testing.T) {
	rt := RetrainerFunc(func([]trace.Trace) (Protector, Auditor, error) {
		return nil, nil, fmt.Errorf("no converged model yet")
	})
	_, hs := newRetrainServer(t, rt)
	c := NewClient(hs.URL)

	if _, err := c.Retrain(); err == nil || !strings.Contains(err.Error(), "no converged model") {
		t.Fatalf("retrain error = %v", err)
	}
	resp, err := c.Upload(trace.New("alice", sampleRecords(2)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mechanisms[0] != "gen0" {
		t.Fatalf("upload after failed retrain used %v, want the original engine", resp.Mechanisms)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Retrains != 0 {
		t.Fatalf("failed retrain counted: %+v", st)
	}
}

func TestHistoryCapBoundsPerUserHistory(t *testing.T) {
	var mu sync.Mutex
	var got []trace.Trace
	rt := RetrainerFunc(func(history []trace.Trace) (Protector, Auditor, error) {
		mu.Lock()
		got = history
		mu.Unlock()
		return nil, nil, nil
	})
	srv, hs := newRetrainServer(t, rt, WithHistoryCap(5))
	c := NewClient(hs.URL)

	if _, err := c.Upload(trace.New("alice", sampleRecords(8))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upload(trace.New("alice", sampleRecords(4))); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Retrain(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].User != "alice" {
		t.Fatalf("history = %v", got)
	}
	if got[0].Len() != 5 {
		t.Fatalf("history kept %d records, want cap 5", got[0].Len())
	}
}

func TestNoHistoryWithoutRetrainer(t *testing.T) {
	srv, hs := newTestServer(t)
	c := NewClient(hs.URL)
	if _, err := c.Upload(trace.New("alice", sampleRecords(6))); err != nil {
		t.Fatal(err)
	}
	if h := srv.historySnapshot(); len(h) != 0 {
		t.Fatalf("history accumulated without a retrainer: %v", h)
	}
}

func TestPeriodicRetrainLoop(t *testing.T) {
	const interval = time.Minute
	clk := clock.NewManual(time.Unix(1_700_000_000, 0))
	passes := make(chan struct{}, 64)
	rt := RetrainerFunc(func([]trace.Trace) (Protector, Auditor, error) {
		select {
		case passes <- struct{}{}:
		default:
		}
		return nil, nil, nil
	})
	srv, err := New(&markedProtector{mark: "gen0"}, WithClock(clk), WithRetrainer(rt, interval))
	if err != nil {
		t.Fatal(err)
	}
	waitPass := func(what string) {
		t.Helper()
		select {
		case <-passes:
		case <-time.After(5 * time.Second):
			srv.Close()
			t.Fatalf("periodic retrain never fired (%s)", what)
		}
	}
	// tick advances virtual time by one interval and joins the loop's
	// processing of that tick, so every assertion below is about a tick
	// that has provably been consumed — no wall-clock sleeps, no races.
	tick := func(what string) {
		t.Helper()
		before := srv.retrainTicks.Load()
		clk.Advance(interval)
		deadline := time.After(5 * time.Second)
		for srv.retrainTicks.Load() == before {
			select {
			case <-deadline:
				srv.Close()
				t.Fatalf("tick never processed (%s)", what)
			default:
				runtime.Gosched()
			}
		}
	}

	clk.BlockUntil(1) // the loop's ticker is registered
	tick("first tick")
	waitPass("first tick")

	// No history change since the pass: further ticks must be skipped —
	// the rebuilt engine would be identical.
	for i := 0; i < 3; i++ {
		tick("idle tick")
	}
	if len(passes) != 0 {
		srv.Close()
		t.Fatal("idle ticks retrained on unchanged history")
	}

	// New history arrives; the next tick retrains again.
	if _, err := srv.protectAndCommit(trace.New("alice", sampleRecords(2))); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	tick("after new history")
	waitPass("after new history")

	// Close must stop the loop and join it (no goroutine leak, no tick
	// after shutdown). Advancing virtual time afterwards cannot revive
	// it: Close joined the loop goroutine, so nothing is listening.
	srv.Close()
	clk.Advance(10 * interval)
	if len(passes) != 0 {
		t.Fatal("retrain ticked after Close")
	}
}

func TestConcurrentRetrainCoalesces(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	rt := RetrainerFunc(func([]trace.Trace) (Protector, Auditor, error) {
		once.Do(func() {
			close(entered)
			<-block
		})
		return nil, nil, nil
	})
	srv, hs := newRetrainServer(t, rt)
	c := NewClient(hs.URL)

	first := make(chan error, 1)
	go func() {
		_, err := srv.Retrain()
		first <- err
	}()
	<-entered

	// A second pass while one is running must not queue behind it.
	if _, err := srv.Retrain(); err != ErrRetrainInProgress {
		t.Fatalf("concurrent Retrain = %v, want ErrRetrainInProgress", err)
	}
	if _, err := c.Retrain(); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("concurrent admin retrain = %v, want 409", err)
	}

	close(block)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	// With the pass finished, retraining works again.
	if _, err := srv.Retrain(); err != nil {
		t.Fatal(err)
	}
}

// gateProtector blocks inside Protect for users with the "slow-" prefix
// until released, simulating an upload whose protection is in flight
// while a retrain pass swaps the engine.
type gateProtector struct {
	inner   markedProtector
	entered chan struct{}
	release chan struct{}
}

func (g *gateProtector) Protect(t trace.Trace) (core.Result, error) {
	if strings.HasPrefix(t.User, "slow-") {
		close(g.entered)
		<-g.release
	}
	return g.inner.Protect(t)
}

// TestCommitRacingSwapIsSelfAudited is the regression test for the
// audit-gap race: an upload that loaded the pre-swap engine and commits
// after the retrain's re-audit pass finished must re-audit its own
// fragments, or a stale-verifier admission would stay published forever.
func TestCommitRacingSwapIsSelfAudited(t *testing.T) {
	gp := &gateProtector{
		inner:   markedProtector{mark: "gen0"},
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	rt := RetrainerFunc(func([]trace.Trace) (Protector, Auditor, error) {
		return nil, ownerAuditor{prefix: "slow-"}, nil
	})
	srv, err := New(gp, WithRetrainer(rt, 0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	done := make(chan error, 1)
	go func() {
		_, err := srv.protectAndCommit(trace.New("slow-alice", sampleRecords(6)))
		done <- err
	}()
	<-gp.entered

	// The engine swaps (and the re-audit pass runs over an empty
	// dataset) while slow-alice's protection is still in flight.
	report, err := srv.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if report.Audited != 0 {
		t.Fatalf("audit pass saw %d fragments before the commit", report.Audited)
	}

	close(gp.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The commit landed after the audit pass, admitted by the stale
	// engine — the self-audit must have quarantined it.
	st := srv.Stats()
	if st.PublishedTraces != 0 || st.QuarantinedTraces != 1 || st.RecordsQuarantined != 6 {
		t.Fatalf("racing commit escaped the re-audit: %+v", st)
	}
	us, err := userStatsOf(srv, "slow-alice")
	if err != nil {
		t.Fatal(err)
	}
	if us.PiecesQuarantined != 1 {
		t.Fatalf("owner accounting missed the self-audit: %+v", us)
	}
}

// userStatsOf reads one user's accounting directly off the shards.
func userStatsOf(s *Server, user string) (UserStats, error) {
	sh := s.shard(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	us, ok := sh.users[user]
	if !ok {
		return UserStats{}, fmt.Errorf("unknown user %q", user)
	}
	return *us, nil
}
