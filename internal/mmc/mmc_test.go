package mmc

import (
	"math"
	"testing"
	"time"

	"mood/internal/geo"
	"mood/internal/poi"
	"mood/internal/trace"
)

var base = geo.Point{Lat: 45.7640, Lon: 4.8357}

// commuter builds a trace that alternates dwells between the given
// places, cycling through them days times. Sampling every 5 minutes,
// each dwell lasts 2 hours.
func commuter(user string, days int, places ...geo.Point) trace.Trace {
	const step = 300
	var rs []trace.Record
	ts := int64(0)
	for d := 0; d < days; d++ {
		for _, p := range places {
			for i := 0; i < 24; i++ { // 2 h dwell
				rs = append(rs, trace.At(geo.Offset(p, float64(i%3)*5, 0), ts))
				ts += step
			}
			ts += 1800 // half-hour travel gap
		}
	}
	return trace.New(user, rs)
}

func extractor() poi.Extractor { return poi.NewExtractor() }

func TestBuildBasicChain(t *testing.T) {
	home := base
	work := geo.Offset(base, 4000, 0)
	c := Build(extractor(), commuter("u", 5, home, work))
	if c.Empty() {
		t.Fatal("chain is empty")
	}
	if c.NumStates() != 2 {
		t.Fatalf("states = %d, want 2", c.NumStates())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Alternating dwells: transitions should be strongly cross-state.
	for i := 0; i < 2; i++ {
		if c.Trans[i][1-i] < 0.8 {
			t.Fatalf("cross transition %d->%d = %v, want ~1", i, 1-i, c.Trans[i][1-i])
		}
	}
}

func TestBuildEmptyTrace(t *testing.T) {
	c := Build(extractor(), trace.Trace{})
	if !c.Empty() {
		t.Fatal("chain of empty trace must be empty")
	}
	if s := c.Stationary(); s != nil {
		t.Fatalf("stationary of empty chain = %v", s)
	}
}

func TestStationaryIsFixedPoint(t *testing.T) {
	home := base
	work := geo.Offset(base, 4000, 0)
	gym := geo.Offset(base, 0, 3000)
	c := Build(extractor(), commuter("u", 6, home, work, gym, work))
	if c.Empty() {
		t.Fatal("empty chain")
	}
	pi := c.Stationary()
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("stationary sums to %v", sum)
	}
	// pi * P must equal pi.
	n := c.NumStates()
	for j := 0; j < n; j++ {
		var v float64
		for i := 0; i < n; i++ {
			v += pi[i] * c.Trans[i][j]
		}
		if math.Abs(v-pi[j]) > 1e-6 {
			t.Fatalf("stationary not fixed at %d: %v vs %v", j, v, pi[j])
		}
	}
}

func TestDistancesIdentity(t *testing.T) {
	c := Build(extractor(), commuter("u", 5, base, geo.Offset(base, 4000, 0)))
	if d := StationaryDistance(c, c); d > 1 {
		t.Fatalf("self stationary distance = %v", d)
	}
	if d := ProximityDistance(c, c); d > 1e-9 {
		t.Fatalf("self proximity distance = %v", d)
	}
	if d := StatsProx(c, c); d > 0.01 {
		t.Fatalf("self stats-prox = %v", d)
	}
}

func TestDistancesDiscriminate(t *testing.T) {
	me := Build(extractor(), commuter("me", 5, base, geo.Offset(base, 4000, 0)))
	// Same habits, second half of the observation period, tiny jitter.
	meLater := Build(extractor(), commuter("me2", 5, geo.Offset(base, 30, 0), geo.Offset(base, 4030, 0)))
	// Different person across town.
	other := Build(extractor(), commuter("other", 5,
		geo.Offset(base, 12000, 9000), geo.Offset(base, 15000, 12000)))

	dSelf := StatsProx(me, meLater)
	dOther := StatsProx(me, other)
	if dSelf >= dOther {
		t.Fatalf("stats-prox does not discriminate: self %v vs other %v", dSelf, dOther)
	}
}

func TestDistancesEmptyChains(t *testing.T) {
	c := Build(extractor(), commuter("u", 5, base, geo.Offset(base, 4000, 0)))
	var empty Chain
	if !math.IsInf(StationaryDistance(c, empty), 1) {
		t.Fatal("distance to empty chain must be +Inf")
	}
	if !math.IsInf(ProximityDistance(empty, c), 1) {
		t.Fatal("distance from empty chain must be +Inf")
	}
	if !math.IsInf(StatsProx(empty, empty), 1) {
		t.Fatal("stats-prox of empty chains must be +Inf")
	}
}

func TestValidateCatchesBadMatrix(t *testing.T) {
	c := Build(extractor(), commuter("u", 5, base, geo.Offset(base, 4000, 0)))
	c.Trans[0][0] = 0.9 // break row sum
	if err := c.Validate(); err == nil {
		t.Fatal("broken row sum must fail validation")
	}
	bad := Chain{States: make([]poi.POI, 2), Trans: [][]float64{{1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("wrong shape must fail validation")
	}
}

func TestSelfLoopForAbsorbingState(t *testing.T) {
	// A single dwell yields one POI and no transitions; the matrix must
	// still be stochastic (self-loop).
	var rs []trace.Record
	for i := 0; i < 30; i++ {
		rs = append(rs, trace.At(base, int64(i)*300))
	}
	c := Build(poi.Extractor{MaxDiameter: 200, MinDwell: 30 * time.Minute, MergeDist: 100},
		trace.New("u", rs))
	if c.Empty() {
		t.Fatal("expected one POI")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Trans[0][0] != 1 {
		t.Fatalf("absorbing state self-loop = %v", c.Trans[0][0])
	}
}
