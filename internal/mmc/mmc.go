// Package mmc builds Mobility Markov Chains — the mobility-profile model
// of the PIT-attack [16]. States are the user's POIs ordered by weight;
// edges carry the empirical probability of moving from one POI to
// another. The stats-prox distance combines a stationary distance
// (geography weighted by state importance) with a proximity distance
// (transition-structure similarity).
package mmc

import (
	"fmt"
	"math"

	"mood/internal/geo"
	"mood/internal/poi"
	"mood/internal/trace"
)

// Chain is a Mobility Markov Chain: POI states plus a row-stochastic
// transition matrix.
type Chain struct {
	// States are the POIs ordered by descending record weight.
	States []poi.POI
	// Trans[i][j] is the probability of moving from state i to state j.
	Trans [][]float64
	// Weights[i] is the record-mass share of state i (sums to 1).
	Weights []float64
}

// Build constructs the MMC of trace t using extractor e. It returns an
// empty chain (States == nil) when no POIs can be extracted — callers
// treat that as "no profile".
func Build(e poi.Extractor, t trace.Trace) Chain {
	return BuildFromPOIs(e, e.Extract(t), t)
}

// BuildFromPOIs constructs the MMC over POIs already extracted from t
// with e's parameters. The batch identification layer extracts POIs
// once per trace and shares them between the POI- and PIT-attacks;
// Build(e, t) is exactly BuildFromPOIs(e, e.Extract(t), t).
func BuildFromPOIs(e poi.Extractor, pois []poi.POI, t trace.Trace) Chain {
	if len(pois) == 0 {
		return Chain{}
	}
	n := len(pois)

	// Assign every record to its nearest POI within the acceptance
	// radius, producing the state-visit sequence.
	radius := e.MaxDiameter
	if radius <= 0 {
		radius = poi.DefaultMaxDiameter
	}
	seq := make([]int, 0, t.Len())
	for _, r := range t.Records {
		best, bestD := -1, math.Inf(1)
		p := r.Point()
		for i, s := range pois {
			if d := geo.FastDistance(s.Center, p); d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 && bestD <= radius {
			// Collapse consecutive visits to the same state.
			if len(seq) == 0 || seq[len(seq)-1] != best {
				seq = append(seq, best)
			}
		}
	}

	counts := make([][]float64, n)
	for i := range counts {
		counts[i] = make([]float64, n)
	}
	for i := 1; i < len(seq); i++ {
		counts[seq[i-1]][seq[i]]++
	}
	trans := make([][]float64, n)
	for i := range counts {
		row := make([]float64, n)
		var sum float64
		for _, c := range counts[i] {
			sum += c
		}
		if sum > 0 {
			for j, c := range counts[i] {
				row[j] = c / sum
			}
		} else {
			// Absorbing or never-left state: self-loop keeps the matrix
			// stochastic.
			row[i] = 1
		}
		trans[i] = row
	}

	return Chain{States: pois, Trans: trans, Weights: poi.Weights(pois)}
}

// Empty reports whether the chain has no states.
func (c Chain) Empty() bool { return len(c.States) == 0 }

// NumStates returns the number of POI states.
func (c Chain) NumStates() int { return len(c.States) }

// Stationary returns the stationary distribution of the chain computed
// by power iteration from the weight vector. For reducible chains this
// converges to a stationary point that respects the starting mass, which
// is the behaviour the attack needs (importance of places).
func (c Chain) Stationary() []float64 {
	n := len(c.States)
	if n == 0 {
		return nil
	}
	pi := make([]float64, n)
	copy(pi, c.Weights)
	next := make([]float64, n)
	for iter := 0; iter < 200; iter++ {
		for j := 0; j < n; j++ {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			if pi[i] == 0 {
				continue
			}
			row := c.Trans[i]
			for j := 0; j < n; j++ {
				next[j] += pi[i] * row[j]
			}
		}
		var delta float64
		for j := 0; j < n; j++ {
			delta += math.Abs(next[j] - pi[j])
		}
		pi, next = next, pi
		if delta < 1e-10 {
			break
		}
	}
	return pi
}

// Validate checks that the transition matrix is square and row-stochastic.
func (c Chain) Validate() error {
	n := len(c.States)
	if len(c.Trans) != n {
		return fmt.Errorf("mmc: %d states but %d transition rows", n, len(c.Trans))
	}
	for i, row := range c.Trans {
		if len(row) != n {
			return fmt.Errorf("mmc: row %d has %d columns, want %d", i, len(row), n)
		}
		var sum float64
		for _, p := range row {
			if p < 0 || p > 1+1e-9 {
				return fmt.Errorf("mmc: row %d has probability %v out of range", i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("mmc: row %d sums to %v", i, sum)
		}
	}
	return nil
}

// StationaryDistance measures how far apart two chains' important places
// are: for every state of a, the geographic distance to the closest
// state of b, averaged with a's stationary weights (and symmetrised).
// Lower means more similar. Returns +Inf when either chain is empty.
func StationaryDistance(a, b Chain) float64 {
	if a.Empty() || b.Empty() {
		return math.Inf(1)
	}
	return (directedStationary(a, b, a.Stationary()) + directedStationary(b, a, b.Stationary())) / 2
}

// directedStationary takes a's stationary distribution precomputed so
// scans comparing one chain against many profiles (the PIT-attack inner
// loop) run the expensive power iteration once per chain, not once per
// pair.
func directedStationary(a, b Chain, pia []float64) float64 {
	var d float64
	for i, s := range a.States {
		best := math.Inf(1)
		for _, t := range b.States {
			if dd := geo.FastDistance(s.Center, t.Center); dd < best {
				best = dd
			}
		}
		d += pia[i] * best
	}
	return d
}

// ProximityDistance compares the transition structure of two chains
// after geographically matching their states: each state of a is matched
// to its nearest state of b, and the L1 difference between the matched
// transition probabilities is accumulated, weighted by a's stationary
// mass (symmetrised). Lower means more similar. Returns +Inf when either
// chain is empty.
func ProximityDistance(a, b Chain) float64 {
	if a.Empty() || b.Empty() {
		return math.Inf(1)
	}
	return (directedProximity(a, b, a.Stationary()) + directedProximity(b, a, b.Stationary())) / 2
}

func directedProximity(a, b Chain, pia []float64) float64 {
	match := make([]int, len(a.States))
	for i, s := range a.States {
		best, bestD := 0, math.Inf(1)
		for j, t := range b.States {
			if d := geo.FastDistance(s.Center, t.Center); d < bestD {
				best, bestD = j, d
			}
		}
		match[i] = best
	}
	var d float64
	for i := range a.States {
		for k := range a.States {
			diff := math.Abs(a.Trans[i][k] - b.Trans[match[i]][match[k]])
			d += pia[i] * diff
		}
	}
	return d
}

// meterScale converts stationary displacement to the proximity scale:
// 1 km of stationary displacement weighs as much as a full unit of
// transition-probability difference.
const meterScale = 1000.0

// StatsProx combines the stationary and proximity distances as the
// PIT-attack's most effective metric. The two components live on
// different scales (meters vs probability mass), so they are combined
// after normalising the stationary part by a city-scale constant.
func StatsProx(a, b Chain) float64 {
	if a.Empty() || b.Empty() {
		return math.Inf(1)
	}
	return StatsProxBounded(a, b, a.Stationary(), b.Stationary(), math.Inf(1))
}

// StatsProxBounded is StatsProx with the stationary distributions
// precomputed by the caller and a best-so-far early exit: both component
// distances are non-negative, so once the stationary part alone reaches
// bound the proximity part cannot bring the total back below it and the
// partial value is returned. A comparison that completes returns exactly
// StatsProx, so a nearest-profile scan picks the same chain either way.
func StatsProxBounded(a, b Chain, pia, pib []float64, bound float64) float64 {
	if a.Empty() || b.Empty() {
		return math.Inf(1)
	}
	sd := (directedStationary(a, b, pia) + directedStationary(b, a, pib)) / 2
	if math.IsInf(sd, 1) {
		return math.Inf(1)
	}
	if partial := sd / meterScale; partial >= bound {
		return partial
	}
	pd := (directedProximity(a, b, pia) + directedProximity(b, a, pib)) / 2
	if math.IsInf(pd, 1) {
		return math.Inf(1)
	}
	return sd/meterScale + pd
}
