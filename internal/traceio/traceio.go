// Package traceio reads and writes mobility traces and datasets in two
// interchange formats:
//
//   - CSV with the header "user,lat,lon,ts" — the format consumed and
//     produced by the cmd/ tools, compatible with the flat exports of the
//     public mobility datasets the paper uses;
//   - JSON lines, one trace object per line — the format of the
//     crowd-sensing middleware wire protocol.
package traceio

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"mood/internal/trace"
)

// CSVHeader is the required first line of the CSV format.
var CSVHeader = []string{"user", "lat", "lon", "ts"}

// WriteCSV writes the dataset in CSV format.
func WriteCSV(w io.Writer, d trace.Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return fmt.Errorf("traceio: write header: %w", err)
	}
	row := make([]string, 4)
	for _, t := range d.Traces {
		for _, r := range t.Records {
			row[0] = t.User
			row[1] = strconv.FormatFloat(r.Lat, 'f', 7, 64)
			row[2] = strconv.FormatFloat(r.Lon, 'f', 7, 64)
			row[3] = strconv.FormatInt(r.TS, 10)
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("traceio: write record: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("traceio: flush: %w", err)
	}
	return nil
}

// ReadCSV reads a dataset in CSV format. The dataset name is supplied by
// the caller because the format does not carry one.
func ReadCSV(r io.Reader, name string) (trace.Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = 4

	header, err := cr.Read()
	if err != nil {
		return trace.Dataset{}, fmt.Errorf("traceio: read header: %w", err)
	}
	for i, want := range CSVHeader {
		if header[i] != want {
			return trace.Dataset{}, fmt.Errorf("traceio: bad header column %d: got %q, want %q", i, header[i], want)
		}
	}

	perUser := map[string][]trace.Record{}
	line := 1
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		line++
		if err != nil {
			return trace.Dataset{}, fmt.Errorf("traceio: line %d: %w", line, err)
		}
		lat, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return trace.Dataset{}, fmt.Errorf("traceio: line %d: lat: %w", line, err)
		}
		lon, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return trace.Dataset{}, fmt.Errorf("traceio: line %d: lon: %w", line, err)
		}
		ts, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			return trace.Dataset{}, fmt.Errorf("traceio: line %d: ts: %w", line, err)
		}
		perUser[row[0]] = append(perUser[row[0]], trace.Record{Lat: lat, Lon: lon, TS: ts})
	}

	traces := make([]trace.Trace, 0, len(perUser))
	for user, rs := range perUser {
		traces = append(traces, trace.New(user, rs))
	}
	d := trace.NewDataset(name, traces)
	if err := d.Validate(); err != nil {
		return trace.Dataset{}, fmt.Errorf("traceio: %w", err)
	}
	return d, nil
}

// WriteJSONL writes one JSON-encoded trace per line.
func WriteJSONL(w io.Writer, d trace.Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range d.Traces {
		if err := enc.Encode(t); err != nil {
			return fmt.Errorf("traceio: encode trace %q: %w", t.User, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("traceio: flush: %w", err)
	}
	return nil
}

// ReadJSONL reads a dataset written by WriteJSONL.
func ReadJSONL(r io.Reader, name string) (trace.Dataset, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var traces []trace.Trace
	for {
		var t trace.Trace
		if err := dec.Decode(&t); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return trace.Dataset{}, fmt.Errorf("traceio: decode trace %d: %w", len(traces), err)
		}
		t.SortInPlace()
		traces = append(traces, t)
	}
	d := trace.NewDataset(name, traces)
	if err := d.Validate(); err != nil {
		return trace.Dataset{}, fmt.Errorf("traceio: %w", err)
	}
	return d, nil
}

// SaveCSVFile writes the dataset to path in CSV format.
func SaveCSVFile(path string, d trace.Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("traceio: close %s: %w", path, cerr)
		}
	}()
	return WriteCSV(f, d)
}

// LoadCSVFile reads a dataset from path in CSV format.
func LoadCSVFile(path, name string) (trace.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Dataset{}, fmt.Errorf("traceio: %w", err)
	}
	defer f.Close()
	return ReadCSV(bufio.NewReader(f), name)
}

// SaveJSONLFile writes the dataset to path in JSONL format.
func SaveJSONLFile(path string, d trace.Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("traceio: close %s: %w", path, cerr)
		}
	}()
	return WriteJSONL(f, d)
}

// LoadJSONLFile reads a dataset from path in JSONL format.
func LoadJSONLFile(path, name string) (trace.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Dataset{}, fmt.Errorf("traceio: %w", err)
	}
	defer f.Close()
	return ReadJSONL(f, name)
}
