package traceio

import (
	"bytes"
	"compress/gzip"
	"testing"

	"mood/internal/synth"
)

// FuzzTraceIO feeds arbitrary bytes to every decode path of the
// interchange layer: CSV, JSONL and their gzipped variants. The
// contract under fuzz:
//
//   - no decoder panics, whatever the bytes,
//   - anything a decoder accepts is a structurally valid dataset
//     (sorted traces, in-range coordinates),
//   - accepted data round-trips: re-encoding and re-decoding preserves
//     the user and record populations exactly.
//
// Run the smoke locally with:
//
//	go test -fuzz=FuzzTraceIO -fuzztime=30s -run='^$' ./internal/traceio
func FuzzTraceIO(f *testing.F) {
	f.Add([]byte("user,lat,lon,ts\n"))
	f.Add([]byte("user,lat,lon,ts\nalice,45.0000000,4.0000000,1\nalice,45.0000010,4.0000010,61\n"))
	f.Add([]byte("user,lat,lon,ts\n\"a,b\",45,-4,9\n"))
	f.Add([]byte("user,lat,lon,ts\nx,95,4,1\n"))           // out-of-range latitude
	f.Add([]byte("user,lat,lon,ts\nx,NaN,4,1\n"))          // parseable float, invalid point
	f.Add([]byte("user,lat,lon,ts\nx,45,4,2\nx,45,4,1\n")) // unsorted timestamps
	f.Add([]byte(`{"user":"alice","records":[{"lat":45,"lon":4,"ts":1}]}` + "\n"))
	f.Add([]byte(`{"user":"alice","records":null}` + "\n"))
	f.Add([]byte{0x1f, 0x8b}) // truncated gzip magic

	// A real generated dataset in every encoding, gzip included, so the
	// corpus starts from deep valid inputs rather than only hand-rolled
	// ones.
	d := synth.MustGenerate(synth.Config{
		Name: "fuzzseed", Center: synth.MDCLike(synth.ScaleTiny, 1).Center,
		Radius: 2000, NumUsers: 2, Days: 1, Seed: 1,
	})
	var csvBuf, jsonlBuf, gzBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, d); err != nil {
		f.Fatal(err)
	}
	if err := WriteJSONL(&jsonlBuf, d); err != nil {
		f.Fatal(err)
	}
	zw := gzip.NewWriter(&gzBuf)
	if _, err := zw.Write(csvBuf.Bytes()); err != nil {
		f.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(csvBuf.Bytes())
	f.Add(jsonlBuf.Bytes())
	f.Add(gzBuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		if d, err := ReadCSV(bytes.NewReader(data), "fuzz"); err == nil {
			if err := d.Validate(); err != nil {
				t.Fatalf("ReadCSV accepted an invalid dataset: %v", err)
			}
			var buf bytes.Buffer
			if err := WriteCSV(&buf, d); err != nil {
				t.Fatalf("re-encoding accepted CSV failed: %v", err)
			}
			d2, err := ReadCSV(&buf, "fuzz")
			if err != nil {
				t.Fatalf("round-trip decode failed: %v", err)
			}
			if d2.NumUsers() != d.NumUsers() || d2.NumRecords() != d.NumRecords() {
				t.Fatalf("CSV round-trip changed shape: %d/%d -> %d/%d",
					d.NumUsers(), d.NumRecords(), d2.NumUsers(), d2.NumRecords())
			}
		}
		if d, err := ReadJSONL(bytes.NewReader(data), "fuzz"); err == nil {
			if err := d.Validate(); err != nil {
				t.Fatalf("ReadJSONL accepted an invalid dataset: %v", err)
			}
			var buf bytes.Buffer
			if err := WriteJSONL(&buf, d); err != nil {
				t.Fatalf("re-encoding accepted JSONL failed: %v", err)
			}
			d2, err := ReadJSONL(&buf, "fuzz")
			if err != nil {
				t.Fatalf("round-trip decode failed: %v", err)
			}
			if d2.NumUsers() != d.NumUsers() || d2.NumRecords() != d.NumRecords() {
				t.Fatalf("JSONL round-trip changed shape: %d/%d -> %d/%d",
					d.NumUsers(), d.NumRecords(), d2.NumUsers(), d2.NumRecords())
			}
		}
		// The gzipped container path (LoadFile's decode branch).
		if zr, err := gzip.NewReader(bytes.NewReader(data)); err == nil {
			if d, err := ReadCSV(zr, "fuzz"); err == nil {
				if err := d.Validate(); err != nil {
					t.Fatalf("gzip+CSV accepted an invalid dataset: %v", err)
				}
			}
		}
	})
}
