package traceio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"mood/internal/trace"
)

// SaveFile writes the dataset to path, choosing the format from the
// extension: .csv, .jsonl, and their gzipped variants (.csv.gz,
// .jsonl.gz).
func SaveFile(path string, d trace.Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("traceio: close %s: %w", path, cerr)
		}
	}()

	var w io.Writer = f
	var zw *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		zw = gzip.NewWriter(f)
		w = zw
	}
	if strings.Contains(path, ".jsonl") {
		err = WriteJSONL(w, d)
	} else {
		err = WriteCSV(w, d)
	}
	if err != nil {
		return err
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return fmt.Errorf("traceio: gzip close: %w", err)
		}
	}
	return nil
}

// LoadFile reads a dataset from path, choosing the format from the
// extension: .csv, .jsonl, and their gzipped variants.
func LoadFile(path, name string) (trace.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Dataset{}, fmt.Errorf("traceio: %w", err)
	}
	defer f.Close()

	var r io.Reader = bufio.NewReader(f)
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(r)
		if err != nil {
			return trace.Dataset{}, fmt.Errorf("traceio: gzip: %w", err)
		}
		defer zr.Close()
		r = zr
	}
	if strings.Contains(path, ".jsonl") {
		return ReadJSONL(r, name)
	}
	return ReadCSV(r, name)
}
