package traceio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mood/internal/geo"
	"mood/internal/trace"
)

var lyon = geo.Point{Lat: 45.7640, Lon: 4.8357}

func sample() trace.Dataset {
	mk := func(user string, n int, start int64) trace.Trace {
		rs := make([]trace.Record, n)
		for i := range rs {
			rs[i] = trace.At(geo.Offset(lyon, float64(i)*25, float64(i)*-10), start+int64(i)*30)
		}
		return trace.New(user, rs)
	}
	return trace.NewDataset("sample", []trace.Trace{
		mk("alice", 10, 1000),
		mk("bob", 7, 2000),
		mk("carol", 1, 3000),
	})
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "sample")
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestJSONLRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf, "sample")
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestFileRoundTrips(t *testing.T) {
	d := sample()
	dir := t.TempDir()

	csvPath := filepath.Join(dir, "d.csv")
	if err := SaveCSVFile(csvPath, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSVFile(csvPath, "sample")
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)

	jsonPath := filepath.Join(dir, "d.jsonl")
	if err := SaveJSONLFile(jsonPath, d); err != nil {
		t.Fatal(err)
	}
	got, err = LoadJSONLFile(jsonPath, "sample")
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"bad header", "who,lat,lon,ts\n"},
		{"bad lat", "user,lat,lon,ts\nu,not-a-number,4.8,100\n"},
		{"bad lon", "user,lat,lon,ts\nu,45.7,nope,100\n"},
		{"bad ts", "user,lat,lon,ts\nu,45.7,4.8,later\n"},
		{"short row", "user,lat,lon,ts\nu,45.7\n"},
		{"empty", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in), "x"); err == nil {
				t.Fatalf("ReadCSV(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestReadCSVUnsortedInputGetsSorted(t *testing.T) {
	in := "user,lat,lon,ts\n" +
		"u,45.7000000,4.8000000,300\n" +
		"u,45.7000000,4.8000000,100\n" +
		"u,45.7000000,4.8000000,200\n"
	d, err := ReadCSV(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := d.Trace("u")
	if !ok || !tr.Sorted() {
		t.Fatal("records must come back sorted")
	}
}

func TestReadJSONLGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json"), "x"); err == nil {
		t.Fatal("garbage JSONL must error")
	}
}

func TestReadJSONLEmpty(t *testing.T) {
	d, err := ReadJSONL(strings.NewReader(""), "empty")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 0 {
		t.Fatalf("NumUsers = %d", d.NumUsers())
	}
}

func TestCSVPrecisionSubMeter(t *testing.T) {
	// 7 decimal places is ~1 cm; a round trip must not move a point more
	// than a few centimeters.
	d := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "sample")
	if err != nil {
		t.Fatal(err)
	}
	orig := d.Traces[0].Records[3].Point()
	back := got.Traces[0].Records[3].Point()
	if dd := geo.Haversine(orig, back); dd > 0.05 {
		t.Fatalf("round trip moved point by %v m", dd)
	}
}

func assertDatasetsEqual(t *testing.T, want, got trace.Dataset) {
	t.Helper()
	if got.NumUsers() != want.NumUsers() {
		t.Fatalf("users: got %d, want %d", got.NumUsers(), want.NumUsers())
	}
	if got.NumRecords() != want.NumRecords() {
		t.Fatalf("records: got %d, want %d", got.NumRecords(), want.NumRecords())
	}
	for i, wt := range want.Traces {
		gt := got.Traces[i]
		if gt.User != wt.User {
			t.Fatalf("trace %d: user %q != %q", i, gt.User, wt.User)
		}
		if gt.Len() != wt.Len() {
			t.Fatalf("trace %d: len %d != %d", i, gt.Len(), wt.Len())
		}
		for j := range wt.Records {
			if gt.Records[j].TS != wt.Records[j].TS {
				t.Fatalf("trace %d record %d: ts %d != %d", i, j, gt.Records[j].TS, wt.Records[j].TS)
			}
			if d := geo.Haversine(gt.Records[j].Point(), wt.Records[j].Point()); d > 0.05 {
				t.Fatalf("trace %d record %d moved %v m", i, j, d)
			}
		}
	}
}

func TestSaveLoadFileFormats(t *testing.T) {
	d := sample()
	dir := t.TempDir()
	for _, name := range []string{"d.csv", "d.jsonl", "d.csv.gz", "d.jsonl.gz"} {
		name := name
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			if err := SaveFile(path, d); err != nil {
				t.Fatal(err)
			}
			got, err := LoadFile(path, "sample")
			if err != nil {
				t.Fatal(err)
			}
			assertDatasetsEqual(t, d, got)
		})
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	d := sample()
	dir := t.TempDir()
	plain := filepath.Join(dir, "d.csv")
	zipped := filepath.Join(dir, "d.csv.gz")
	if err := SaveFile(plain, d); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(zipped, d); err != nil {
		t.Fatal(err)
	}
	ps, err := os.Stat(plain)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := os.Stat(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if zs.Size() >= ps.Size() {
		t.Fatalf("gzip did not shrink: %d >= %d", zs.Size(), ps.Size())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/file.csv", "x"); err == nil {
		t.Fatal("missing file must error")
	}
	// A non-gzip file with .gz suffix must fail cleanly.
	dir := t.TempDir()
	fake := filepath.Join(dir, "fake.csv.gz")
	if err := os.WriteFile(fake, []byte("user,lat,lon,ts\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(fake, "x"); err == nil {
		t.Fatal("non-gzip content must error")
	}
}
