package attack

import (
	"testing"

	"mood/internal/synth"
	"mood/internal/trace"
)

// benchAPEnv builds a trained AP over a realistic background and returns
// the attack plus an anonymous test trace.
func benchAPEnv(b *testing.B, users int) (*AP, trace.Trace) {
	b.Helper()
	cfg := synth.PrivamovLike(synth.ScaleTiny, 11)
	cfg.NumUsers = users
	cfg.Days = 8
	cfg.DriftFraction = 0
	d, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	train, test := d.SplitTrainTest(0.5, 20)
	ap := NewAP()
	if err := ap.Train(train.Traces); err != nil {
		b.Fatal(err)
	}
	if test.NumUsers() == 0 {
		b.Fatal("no test users")
	}
	return ap, test.Traces[0]
}

// BenchmarkAPIdentify measures the AP-attack hot path over the frozen
// sorted-sparse profiles. "full" is the public Identify (one anonymous
// freeze plus the scan); "scan" is the profile comparison loop alone,
// which must stay at 0 allocs/op — the acceptance bar of the Frozen
// refactor (the map-based baseline ran ~95 allocs and ~700µs per
// Identify on this workload; see BENCH_heatmap.json).
func BenchmarkAPIdentify(b *testing.B) {
	ap, anon := benchAPEnv(b, 10)
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v := ap.Identify(anon); !v.OK {
				b.Fatal("no verdict")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		frozen := ap.buildSlices(anon)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if v := ap.identifyFrozen(frozen); !v.OK {
				b.Fatal("no verdict")
			}
		}
	})
}
