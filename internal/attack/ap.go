package attack

import (
	"fmt"
	"math"

	"mood/internal/geo"
	"mood/internal/heatmap"
	"mood/internal/trace"
)

// Divergence selects how AP compares heatmap distributions. The AP
// paper [22] evaluated several f-divergences and found Topsoe the most
// effective; the alternatives are kept for sensitivity experiments.
type Divergence int

// Supported heatmap divergences.
const (
	// DivTopsoe is the paper's choice (default).
	DivTopsoe Divergence = iota
	// DivJensenShannon is Topsoe/2 (same ranking, different scale).
	DivJensenShannon
	// DivL1 is the total-variation-style absolute difference.
	DivL1
)

// String implements fmt.Stringer.
func (d Divergence) String() string {
	switch d {
	case DivJensenShannon:
		return "jensen-shannon"
	case DivL1:
		return "l1"
	default:
		return "topsoe"
	}
}

// AP is the AP-Attack of Maouche et al. [22]: each user's mobility is
// profiled as a heatmap over fixed cells (800 m in the paper) and an
// anonymous trace is attributed to the profile with the smallest
// divergence (Topsoe in the paper).
type AP struct {
	// CellSize is the heatmap granularity in meters (0 selects the
	// paper's 800 m).
	CellSize float64
	// Divergence selects the profile distance (default Topsoe).
	Divergence Divergence
	// TimeSlices splits each day into this many slices, profiling one
	// heatmap per slice (e.g. 2 = day/night). 0 or 1 reproduces the
	// paper's single time-agnostic heatmap; higher values make the
	// attack sensitive to *when* places are visited, a sensitivity
	// variant of the original paper.
	TimeSlices int

	grid     *geo.Grid
	profiles []apProfile
	// block is the profile count per cache-resident block of the batch
	// scan, sized at Train time from the quantized footprint.
	block int
}

type apProfile struct {
	user string
	// slices holds one frozen heatmap per time slice: Train freezes every
	// profile once, so the Identify scan is pure merge walks with no
	// per-comparison allocation.
	slices []*heatmap.Frozen
	// quant is the float32-quantized companion of slices, also built at
	// Train time; the batch scans use it to prune provable losers before
	// touching the exact kernels (see pruneFrozen).
	quant []*heatmap.Quant
}

// sliceOf maps a Unix timestamp to its time-of-day slice index.
func (a *AP) sliceOf(ts int64) int {
	n := a.slices()
	if n == 1 {
		return 0
	}
	secOfDay := ts % 86400
	if secOfDay < 0 {
		secOfDay += 86400
	}
	return int(secOfDay * int64(n) / 86400)
}

func (a *AP) slices() int {
	if a.TimeSlices <= 1 {
		return 1
	}
	return a.TimeSlices
}

// buildSlices aggregates a trace into per-slice frozen heatmaps.
func (a *AP) buildSlices(t trace.Trace) []*heatmap.Frozen {
	hms := make([]*heatmap.Heatmap, a.slices())
	for i := range hms {
		hms[i] = heatmap.New(a.grid)
	}
	for _, r := range t.Records {
		hms[a.sliceOf(r.TS)].Add(r.Point(), 1)
	}
	out := make([]*heatmap.Frozen, len(hms))
	for i, hm := range hms {
		out[i] = hm.Freeze()
	}
	return out
}

var _ Attack = (*AP)(nil)

// NewAP returns an AP-attack with the paper's cell size.
func NewAP() *AP { return &AP{CellSize: heatmap.DefaultCellSize} }

// Name implements Attack.
func (*AP) Name() string { return "AP" }

// Train implements Attack.
func (a *AP) Train(background []trace.Trace) error {
	size := a.CellSize
	if size <= 0 {
		size = heatmap.DefaultCellSize
	}
	box := geo.EmptyBBox()
	for _, t := range background {
		if !t.Empty() {
			box = box.Extend(t.BBox().Center())
		}
	}
	if box.Empty() {
		return fmt.Errorf("attack: AP background has no records")
	}
	a.grid = geo.NewGrid(box.Center(), size)
	a.profiles = a.profiles[:0]
	for _, t := range background {
		if t.Empty() {
			continue
		}
		a.profiles = append(a.profiles, apProfile{
			user:   t.User,
			slices: a.buildSlices(t),
		})
	}
	if len(a.profiles) == 0 {
		return fmt.Errorf("attack: AP has no usable profiles")
	}
	for pi := range a.profiles {
		a.profiles[pi].quant = heatmap.QuantizeAll(a.profiles[pi].slices)
	}
	a.block = apBlockLen(a.profiles)
	return nil
}

// apBlockBytes targets the quantized footprint of one profile block of
// the batch scan (~half a typical L2 cache): the outer loop holds a
// block while every trace of the batch streams against it, so the
// block — not the whole profile set — is what must stay resident.
const apBlockBytes = 256 << 10

// apBlockLen sizes the profile block from the average quantized
// profile footprint.
func apBlockLen(profiles []apProfile) int {
	if len(profiles) == 0 {
		return 1
	}
	var bytes int
	for pi := range profiles {
		for _, q := range profiles[pi].quant {
			bytes += q.MemBytes()
		}
	}
	n := apBlockBytes / (bytes/len(profiles) + 1)
	if n < 1 {
		return 1
	}
	if n > len(profiles) {
		return len(profiles)
	}
	return n
}

// Identify implements Attack. The anonymous trace is frozen once; the
// profile scan is then allocation-free merge walks with a best-so-far
// early exit (see identifyFrozen).
func (a *AP) Identify(t trace.Trace) Verdict {
	if a.grid == nil {
		return Verdict{}
	}
	if t.Empty() {
		return Verdict{}
	}
	return a.identifyFrozen(a.buildSlices(t))
}

// identifyFrozen scans the trained profiles for the smallest weighted
// divergence to the frozen anonymous slices, folding completed scores
// through the shared topTwo tracker: ties break toward the lowest user
// ID and the runner-up score feeds Verdict.Margin. A profile is
// abandoned as soon as its accumulated weighted score provably reaches
// the topTwo bound — sound because every divergence term is
// non-negative (see heatmap.TopsoeBounded) — so the verdict is
// bit-identical to an exhaustive scan. The loop allocates nothing.
func (a *AP) identifyFrozen(anon []*heatmap.Frozen) Verdict {
	k := newTopTwo()
	for pi := range a.profiles {
		p := &a.profiles[pi]
		if d, ok := a.scoreFrozen(anon, p, k.bound()); ok {
			k.consider(p.user, d)
		}
	}
	return k.verdict()
}

// scoreFrozen returns the exact weighted divergence between the frozen
// anonymous slices and profile p, abandoning the merge walks once the
// final score provably reaches bound. ok reports a completed scan with
// score < bound; an abandoned scan's partial score is meaningless and
// discarded by the caller. This is the one exact scoring path shared
// by the scalar scan, the blocked batch scan and the owner-seeded hit
// scan — bit-identity between them is by construction.
func (a *AP) scoreFrozen(anon []*heatmap.Frozen, p *apProfile, bound float64) (float64, bool) {
	// First pass: the total slice weight, so the early-exit bound can
	// be expressed on the final weighted score d/weight.
	var weight float64
	for i, hm := range anon {
		if hm.Total() == 0 && p.slices[i].Total() == 0 {
			continue // neither side has data in this slice
		}
		w := hm.Total()
		if w == 0 {
			w = 1 // profile-only slice: small disagreement weight
		}
		weight += w
	}
	var d float64
	for i, hm := range anon {
		if hm.Total() == 0 && p.slices[i].Total() == 0 {
			continue
		}
		w := hm.Total()
		if w == 0 {
			w = 1
		}
		d += a.sliceTerm(hm, p.slices[i], w, d, weight, bound)
		if d/weight >= bound {
			return d, false // cannot drop below the bound any more
		}
	}
	if weight > 0 {
		d /= weight
	}
	return d, d < bound
}

// pruneFrozen reports whether the float32 quantized pass certifies
// that p's exact weighted score cannot drop below bound, letting the
// batch scans skip the exact float64 walk entirely. Soundness: a
// completed quantized slice divergence is within heatmap.QuantTopsoeSlack
// (resp. QuantL1Slack) of the exact value — enforced with margin by
// TestQuantSlackSound — so approx−slack lower-bounds each exact term,
// and only profiles whose accumulated lower bound reaches the caller's
// bound are pruned. Verdicts come exclusively from exact scans of the
// survivors: pruning can cost speed, never bits.
func (a *AP) pruneFrozen(anon []*heatmap.Frozen, quant []*heatmap.Quant, p *apProfile, bound float64) bool {
	if math.IsInf(bound, 1) {
		return false
	}
	var weight float64
	for i, hm := range anon {
		if hm.Total() == 0 && p.slices[i].Total() == 0 {
			continue
		}
		w := hm.Total()
		if w == 0 {
			w = 1
		}
		weight += w
	}
	if weight == 0 {
		return false
	}
	need := bound * weight // prune once the weighted lower bound reaches this
	var lower float64
	for i, hm := range anon {
		if hm.Total() == 0 && p.slices[i].Total() == 0 {
			continue
		}
		w := hm.Total()
		if w == 0 {
			w = 1
		}
		q, pq := quant[i], p.quant[i]
		n := q.Cells() + pq.Cells()
		// rem is the extra slice contribution that would certify the
		// prune; the quantized walk may exit early once its partial sum
		// alone reaches slack+rem (in the raw approximation's scale).
		rem := (need - lower) / w
		var contrib float64
		switch a.Divergence {
		case DivJensenShannon:
			slack := heatmap.QuantTopsoeSlack(n)
			ap := float64(q.TopsoeQuantBounded(pq, float32(slack+2*rem)))
			contrib = (ap - slack) / 2
		case DivL1:
			slack := heatmap.QuantL1Slack(n)
			ap := float64(q.L1QuantBounded(pq, float32(slack+rem)))
			contrib = ap - slack
		default:
			slack := heatmap.QuantTopsoeSlack(n)
			ap := float64(q.TopsoeQuantBounded(pq, float32(slack+rem)))
			contrib = ap - slack
		}
		if contrib < 0 {
			contrib = 0 // exact terms are non-negative; keep the bound valid
		}
		lower += w * contrib
		if lower >= need {
			return true
		}
	}
	return false
}

// sliceTerm returns one slice's weighted contribution w*distance under
// the configured divergence, walking with the early-exit bound of the
// enclosing scan: acc is the score accumulated over previous slices,
// weight the profile's total slice weight and bound the best final score
// seen so far.
func (a *AP) sliceTerm(anon, prof *heatmap.Frozen, w, acc, weight, bound float64) float64 {
	switch a.Divergence {
	case DivJensenShannon:
		return w * (anon.TopsoeBounded(prof, 0.5*w, acc, weight, bound) / 2)
	case DivL1:
		return w * anon.L1Bounded(prof, w, acc, weight, bound)
	default:
		return w * anon.TopsoeBounded(prof, w, acc, weight, bound)
	}
}

// Grid exposes the trained grid (diagnostics).
func (a *AP) Grid() *geo.Grid { return a.grid }

// apAnon is one anonymous trace of a batch, frozen and quantized once.
type apAnon struct {
	slices []*heatmap.Frozen
	quant  []*heatmap.Quant
	k      topTwo
	skip   bool
}

// IdentifyBatch implements BatchIdentifier: verdicts are bit-identical
// to per-trace Identify calls (see identifyBatchSpan), with each trace
// frozen once and the profile scan restructured for cache locality and
// float32 pruning.
func (a *AP) IdentifyBatch(ts []trace.Trace) []Verdict {
	out := make([]Verdict, len(ts))
	if a.grid == nil {
		return out
	}
	batchSpans(len(ts), func(lo, hi int) { a.identifyBatchSpan(ts, out, lo, hi) })
	return out
}

// identifyBatchSpan scans traces [lo, hi) of the batch through the
// trained profiles in cache-resident blocks: the outer loop walks
// profile blocks, the inner loop streams every trace of the span
// against the block while it is hot, and each trace's best-so-far
// bounds persist across blocks, so later blocks prune harder. The
// float32 quantized pass rejects most losers without touching the
// exact kernels; survivors are rescored in exact float64 through the
// same scoreFrozen as the scalar path, and topTwo's fold is
// scan-order-independent — so the verdicts are bit-identical to
// Identify's despite the reordering.
func (a *AP) identifyBatchSpan(ts []trace.Trace, out []Verdict, lo, hi int) {
	anons := make([]apAnon, hi-lo)
	for i := range anons {
		an := &anons[i]
		if ts[lo+i].Empty() {
			an.skip = true
			continue
		}
		an.slices = a.buildSlices(ts[lo+i])
		an.quant = heatmap.QuantizeAll(an.slices)
		an.k = newTopTwo()
	}
	for bs := 0; bs < len(a.profiles); bs += a.block {
		be := bs + a.block
		if be > len(a.profiles) {
			be = len(a.profiles)
		}
		for i := range anons {
			an := &anons[i]
			if an.skip {
				continue
			}
			for pi := bs; pi < be; pi++ {
				p := &a.profiles[pi]
				bound := an.k.bound()
				if a.pruneFrozen(an.slices, an.quant, p, bound) {
					continue
				}
				if d, ok := a.scoreFrozen(an.slices, p, bound); ok {
					an.k.consider(p.user, d)
				}
			}
		}
	}
	for i := range anons {
		if !anons[i].skip {
			out[lo+i] = anons[i].k.verdict()
		}
	}
}

// hitOne answers "would Identify attribute t to owner" without
// completing the argmin: the owner's exact score seeds the bound and
// the scan stops at the first profile that provably beats it under the
// shared tie rule (lower score, or equal score and smaller user ID).
// Profiles abandoned or pruned at the nextUp(ownerScore) bound have
// true scores strictly above the owner's and cannot beat it, so the
// boolean equals Identify(t).OK && User == owner exactly — at a
// fraction of the cost when a beater exists.
func (a *AP) hitOne(t trace.Trace, owner string) bool {
	if a.grid == nil || t.Empty() {
		return false
	}
	anon := a.buildSlices(t)
	quant := heatmap.QuantizeAll(anon)
	// Owner score: the minimum over the owner's profiles (normally
	// exactly one).
	so := math.Inf(1)
	seen := false
	for pi := range a.profiles {
		p := &a.profiles[pi]
		if p.user != owner {
			continue
		}
		if d, ok := a.scoreFrozen(anon, p, math.Inf(1)); ok && d < so {
			so, seen = d, true
		}
	}
	if !seen {
		return false
	}
	bound := nextUp(so)
	for pi := range a.profiles {
		p := &a.profiles[pi]
		if p.user == owner {
			continue
		}
		if a.pruneFrozen(anon, quant, p, bound) {
			continue
		}
		d, ok := a.scoreFrozen(anon, p, bound)
		if !ok {
			continue
		}
		if d < so || (d == so && p.user < owner) {
			return false
		}
	}
	return true
}
