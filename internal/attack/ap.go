package attack

import (
	"fmt"
	"math"

	"mood/internal/geo"
	"mood/internal/heatmap"
	"mood/internal/trace"
)

// Divergence selects how AP compares heatmap distributions. The AP
// paper [22] evaluated several f-divergences and found Topsoe the most
// effective; the alternatives are kept for sensitivity experiments.
type Divergence int

// Supported heatmap divergences.
const (
	// DivTopsoe is the paper's choice (default).
	DivTopsoe Divergence = iota
	// DivJensenShannon is Topsoe/2 (same ranking, different scale).
	DivJensenShannon
	// DivL1 is the total-variation-style absolute difference.
	DivL1
)

// String implements fmt.Stringer.
func (d Divergence) String() string {
	switch d {
	case DivJensenShannon:
		return "jensen-shannon"
	case DivL1:
		return "l1"
	default:
		return "topsoe"
	}
}

// AP is the AP-Attack of Maouche et al. [22]: each user's mobility is
// profiled as a heatmap over fixed cells (800 m in the paper) and an
// anonymous trace is attributed to the profile with the smallest
// divergence (Topsoe in the paper).
type AP struct {
	// CellSize is the heatmap granularity in meters (0 selects the
	// paper's 800 m).
	CellSize float64
	// Divergence selects the profile distance (default Topsoe).
	Divergence Divergence
	// TimeSlices splits each day into this many slices, profiling one
	// heatmap per slice (e.g. 2 = day/night). 0 or 1 reproduces the
	// paper's single time-agnostic heatmap; higher values make the
	// attack sensitive to *when* places are visited, a sensitivity
	// variant of the original paper.
	TimeSlices int

	grid     *geo.Grid
	profiles []apProfile
}

type apProfile struct {
	user string
	// slices holds one frozen heatmap per time slice: Train freezes every
	// profile once, so the Identify scan is pure merge walks with no
	// per-comparison allocation.
	slices []*heatmap.Frozen
}

// sliceOf maps a Unix timestamp to its time-of-day slice index.
func (a *AP) sliceOf(ts int64) int {
	n := a.slices()
	if n == 1 {
		return 0
	}
	secOfDay := ts % 86400
	if secOfDay < 0 {
		secOfDay += 86400
	}
	return int(secOfDay * int64(n) / 86400)
}

func (a *AP) slices() int {
	if a.TimeSlices <= 1 {
		return 1
	}
	return a.TimeSlices
}

// buildSlices aggregates a trace into per-slice frozen heatmaps.
func (a *AP) buildSlices(t trace.Trace) []*heatmap.Frozen {
	hms := make([]*heatmap.Heatmap, a.slices())
	for i := range hms {
		hms[i] = heatmap.New(a.grid)
	}
	for _, r := range t.Records {
		hms[a.sliceOf(r.TS)].Add(r.Point(), 1)
	}
	out := make([]*heatmap.Frozen, len(hms))
	for i, hm := range hms {
		out[i] = hm.Freeze()
	}
	return out
}

var _ Attack = (*AP)(nil)

// NewAP returns an AP-attack with the paper's cell size.
func NewAP() *AP { return &AP{CellSize: heatmap.DefaultCellSize} }

// Name implements Attack.
func (*AP) Name() string { return "AP" }

// Train implements Attack.
func (a *AP) Train(background []trace.Trace) error {
	size := a.CellSize
	if size <= 0 {
		size = heatmap.DefaultCellSize
	}
	box := geo.EmptyBBox()
	for _, t := range background {
		if !t.Empty() {
			box = box.Extend(t.BBox().Center())
		}
	}
	if box.Empty() {
		return fmt.Errorf("attack: AP background has no records")
	}
	a.grid = geo.NewGrid(box.Center(), size)
	a.profiles = a.profiles[:0]
	for _, t := range background {
		if t.Empty() {
			continue
		}
		a.profiles = append(a.profiles, apProfile{
			user:   t.User,
			slices: a.buildSlices(t),
		})
	}
	if len(a.profiles) == 0 {
		return fmt.Errorf("attack: AP has no usable profiles")
	}
	return nil
}

// Identify implements Attack. The anonymous trace is frozen once; the
// profile scan is then allocation-free merge walks with a best-so-far
// early exit (see identifyFrozen).
func (a *AP) Identify(t trace.Trace) Verdict {
	if a.grid == nil {
		return Verdict{}
	}
	if t.Empty() {
		return Verdict{}
	}
	return a.identifyFrozen(a.buildSlices(t))
}

// identifyFrozen scans the trained profiles for the smallest weighted
// divergence to the frozen anonymous slices. A profile is abandoned as
// soon as its accumulated weighted score can no longer drop below the
// best seen so far — sound because every divergence term is non-negative
// (see heatmap.TopsoeBounded) — so the verdict is bit-identical to an
// exhaustive scan. The loop allocates nothing.
func (a *AP) identifyFrozen(anon []*heatmap.Frozen) Verdict {
	best := Verdict{Score: math.Inf(1)}
	for pi := range a.profiles {
		p := &a.profiles[pi]
		// First pass: the total slice weight, so the early-exit bound can
		// be expressed on the final weighted score d/weight.
		var weight float64
		for i, hm := range anon {
			if hm.Total() == 0 && p.slices[i].Total() == 0 {
				continue // neither side has data in this slice
			}
			w := hm.Total()
			if w == 0 {
				w = 1 // profile-only slice: small disagreement weight
			}
			weight += w
		}
		var d float64
		for i, hm := range anon {
			if hm.Total() == 0 && p.slices[i].Total() == 0 {
				continue
			}
			w := hm.Total()
			if w == 0 {
				w = 1
			}
			d += a.sliceTerm(hm, p.slices[i], w, d, weight, best.Score)
			if d/weight >= best.Score {
				break // cannot beat the best profile any more
			}
		}
		if weight > 0 {
			d /= weight
		}
		if d < best.Score {
			best = Verdict{User: p.user, Score: d, OK: true}
		}
	}
	return best
}

// sliceTerm returns one slice's weighted contribution w*distance under
// the configured divergence, walking with the early-exit bound of the
// enclosing scan: acc is the score accumulated over previous slices,
// weight the profile's total slice weight and bound the best final score
// seen so far.
func (a *AP) sliceTerm(anon, prof *heatmap.Frozen, w, acc, weight, bound float64) float64 {
	switch a.Divergence {
	case DivJensenShannon:
		return w * (anon.TopsoeBounded(prof, 0.5*w, acc, weight, bound) / 2)
	case DivL1:
		return w * anon.L1Bounded(prof, w, acc, weight, bound)
	default:
		return w * anon.TopsoeBounded(prof, w, acc, weight, bound)
	}
}

// Grid exposes the trained grid (diagnostics).
func (a *AP) Grid() *geo.Grid { return a.grid }
