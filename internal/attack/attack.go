// Package attack implements the user re-identification attacks of the
// paper: AP-Attack (heatmaps, [22]), POI-Attack (points of interest,
// [27]) and PIT-Attack (mobility Markov chains, [16]).
//
// Every attack follows the two-phase protocol of §2.2: Train builds
// per-user mobility profiles from background knowledge H (past,
// unprotected traces), and Identify links an anonymous trace to the
// closest profile. Attacks are safe for concurrent Identify calls once
// trained — profiles are immutable after Train.
package attack

import (
	"errors"
	"fmt"

	"mood/internal/trace"
)

// ErrNotTrained is returned by Identify before Train has been called.
var ErrNotTrained = errors.New("attack: not trained")

// Verdict is the outcome of an identification attempt.
type Verdict struct {
	// User is the identity the attack assigns to the trace; empty when
	// the attack cannot build a profile from the trace at all.
	User string
	// Score is the profile distance of the chosen user (lower = more
	// confident, scale is attack-specific).
	Score float64
	// Margin is the runner-up gap: the second-best profile's score
	// minus Score, ≥ 0 on the attack's own scale. Large margins mean
	// confident re-identification — the ordering key for
	// risk-prioritised re-audits (ROADMAP item 2). It is +Inf when
	// only one profile produced a score (no runner-up exists; note
	// +Inf does not survive JSON encoding), and exactly 0 on a tie,
	// which is broken toward the lowest user ID.
	Margin float64
	// OK reports whether the attack produced a verdict. A false OK
	// counts as a failed re-identification (Eq. 4's Aₖ(T) ≠ U).
	OK bool
}

// Attack is a re-identification attack A : (R² × R⁺)* → U (Eq. 1).
type Attack interface {
	// Name identifies the attack in reports.
	Name() string
	// Train builds the per-user profiles from background traces.
	Train(background []trace.Trace) error
	// Identify links an anonymous trace to the closest known profile.
	Identify(t trace.Trace) Verdict
}

// Set bundles several trained attacks; MooD's engine evaluates candidate
// obfuscations against all of them.
type Set []Attack

// TrainAll trains every attack on the same background knowledge.
func TrainAll(attacks Set, background []trace.Trace) error {
	for _, a := range attacks {
		if err := a.Train(background); err != nil {
			return fmt.Errorf("attack: training %s: %w", a.Name(), err)
		}
	}
	return nil
}

// ReIdentifies reports whether any attack in the set links t back to
// trueUser, and returns the name of the first attack that does.
// This is the predicate of the paper's protection definitions (Eq. 4–6):
// a trace is protected iff *no* attack re-identifies it.
func (s Set) ReIdentifies(t trace.Trace, trueUser string) (bool, string) {
	for _, a := range s {
		v := a.Identify(t)
		if v.OK && v.User == trueUser {
			return true, a.Name()
		}
	}
	return false, ""
}

// Names returns the attack names in order.
func (s Set) Names() []string {
	out := make([]string, len(s))
	for i, a := range s {
		out[i] = a.Name()
	}
	return out
}
