package attack

import (
	"math"
	"testing"

	"mood/internal/trace"
)

// verdictsEq demands bit-identical verdicts: float fields are compared
// by their IEEE bit patterns, so a batch kernel that drifts by even one
// ulp from the scalar path fails loudly.
func verdictsEq(a, b Verdict) bool {
	return a.User == b.User &&
		math.Float64bits(a.Score) == math.Float64bits(b.Score) &&
		math.Float64bits(a.Margin) == math.Float64bits(b.Margin) &&
		a.OK == b.OK
}

// batchCandidates assembles the anonymous workload for the equivalence
// tests: every test trace stripped of its user label, plus the edge
// cases the scalar path handles specially — an empty trace and a trace
// with support disjoint from every profile.
func batchCandidates(test trace.Dataset) []trace.Trace {
	ts := make([]trace.Trace, 0, len(test.Traces)+2)
	for _, tr := range test.Traces {
		ts = append(ts, tr.WithUser(""))
	}
	ts = append(ts, trace.Trace{})
	far := make([]trace.Record, 0, 24)
	for h := 0; h < 24; h++ {
		far = append(far, trace.Record{Lat: -33.9, Lon: 151.2, TS: int64(h) * 3600})
	}
	ts = append(ts, trace.New("", far))
	return ts
}

// TestBatchMatchesScalarBitIdentical is the batch layer's core
// contract: for every attack, IdentifyBatch over a mixed workload —
// realistic anonymous traces, an empty trace, a disjoint-support trace
// — returns verdicts bit-identical to trace-at-a-time Identify, and
// BatchIdentify over the whole set agrees with both. The float32 prune
// therefore only ever skips work, never changes an answer.
func TestBatchMatchesScalarBitIdentical(t *testing.T) {
	for _, seed := range []uint64{11, 29, 47} {
		train, test := testSplit(t, seed)
		atks := allAttacks()
		for _, a := range atks {
			if err := a.Train(train.Traces); err != nil {
				t.Fatal(err)
			}
		}
		ts := batchCandidates(test)

		perAttack := make([][]Verdict, len(atks))
		for ai, a := range atks {
			ba, ok := a.(BatchIdentifier)
			if !ok {
				t.Fatalf("%s does not implement BatchIdentifier", a.Name())
			}
			got := ba.IdentifyBatch(ts)
			if len(got) != len(ts) {
				t.Fatalf("%s: IdentifyBatch returned %d verdicts for %d traces", a.Name(), len(got), len(ts))
			}
			for i, tr := range ts {
				want := a.Identify(tr)
				if !verdictsEq(got[i], want) {
					t.Fatalf("seed %d, %s, trace %d: batch verdict %+v != scalar %+v",
						seed, a.Name(), i, got[i], want)
				}
			}
			perAttack[ai] = got
		}

		for ai, vs := range BatchIdentify(atks, ts) {
			for i := range ts {
				if !verdictsEq(vs[i], perAttack[ai][i]) {
					t.Fatalf("seed %d, %s, trace %d: BatchIdentify verdict %+v != IdentifyBatch %+v",
						seed, atks[ai].Name(), i, vs[i], perAttack[ai][i])
				}
			}
		}
	}
}

// dwellTrace builds a trace that dwells three hours at each point in
// turn (one record every ten minutes), long and stationary enough for
// the default POI extractor (200 m, 1 h) to see every point as a POI
// and for the PIT chain to observe the transitions between them.
func dwellTrace(user string, pts [][2]float64) trace.Trace {
	var recs []trace.Record
	ts := int64(0)
	for _, p := range pts {
		for i := 0; i < 18; i++ {
			recs = append(recs, trace.Record{Lat: p[0], Lon: p[1], TS: ts})
			ts += 600
		}
	}
	return trace.New(user, recs)
}

// TestTieBreaksTowardLowestUserID pins the determinism bugfix: two
// users with byte-for-byte identical training data score identically
// against an anonymous copy of that data, and both the scalar and the
// batch path must resolve the tie to the lexicographically smallest
// user ID with a Margin of exactly zero — regardless of profile
// insertion order ("ub" is trained before "ua" on purpose). A third,
// far-away user gives the batch prune a profile to reject.
func TestTieBreaksTowardLowestUserID(t *testing.T) {
	home := [][2]float64{{45.00, 5.00}, {45.02, 5.00}, {45.00, 5.00}, {45.02, 5.00}}
	background := []trace.Trace{
		dwellTrace("ub", home),
		dwellTrace("ua", home),
		dwellTrace("uc", [][2]float64{{46.5, 6.5}, {46.52, 6.5}, {46.5, 6.5}, {46.52, 6.5}}),
	}
	anon := dwellTrace("", home)

	for _, a := range allAttacks() {
		if err := a.Train(background); err != nil {
			t.Fatal(err)
		}
		scalar := a.Identify(anon)
		if !scalar.OK {
			t.Fatalf("%s produced no verdict on its own training data", a.Name())
		}
		if scalar.User != "ua" {
			t.Fatalf("%s broke the tie toward %q, want lowest user ID \"ua\"", a.Name(), scalar.User)
		}
		if scalar.Margin != 0 {
			t.Fatalf("%s reported Margin %g on an exact tie, want 0", a.Name(), scalar.Margin)
		}
		batch := a.(BatchIdentifier).IdentifyBatch([]trace.Trace{anon})
		if !verdictsEq(batch[0], scalar) {
			t.Fatalf("%s: batch tie verdict %+v != scalar %+v", a.Name(), batch[0], scalar)
		}
	}
}

// TestMarginSeparatesRunnerUp sanity-checks the new Verdict field on a
// non-tied workload: a verdict's Margin is non-negative, and +Inf only
// when there is a single candidate profile.
func TestMarginSeparatesRunnerUp(t *testing.T) {
	train, test := testSplit(t, 31)
	atks := allAttacks()
	for _, a := range atks {
		if err := a.Train(train.Traces); err != nil {
			t.Fatal(err)
		}
	}
	sawFinite := false
	for _, a := range atks {
		for _, tr := range test.Traces {
			v := a.Identify(tr.WithUser(""))
			if !v.OK {
				continue
			}
			if v.Margin < 0 || math.IsNaN(v.Margin) {
				t.Fatalf("%s: Margin %g out of range on %q", a.Name(), v.Margin, tr.User)
			}
			if !math.IsInf(v.Margin, 1) {
				sawFinite = true
			}
		}
	}
	if !sawFinite {
		t.Fatal("no finite Margin observed across the whole workload")
	}
}

// TestReIdentifiesBatchMatchesScalar checks the audit-facing predicate:
// for mixed (trace, claimed-owner) pairs — true owners and wrong owners
// interleaved — the batched pass returns exactly the scalar
// ReIdentifies answer pair by pair, including which attack hit first.
func TestReIdentifiesBatchMatchesScalar(t *testing.T) {
	for _, seed := range []uint64{17, 53} {
		train, test := testSplit(t, seed)
		atks := allAttacks()
		for _, a := range atks {
			if err := a.Train(train.Traces); err != nil {
				t.Fatal(err)
			}
		}

		var ts []trace.Trace
		var owners []string
		for i, tr := range test.Traces {
			ts = append(ts, tr.WithUser(""))
			owners = append(owners, tr.User)
			// Same trace again, claimed by a different user: must miss
			// unless the attacks genuinely confuse the two.
			ts = append(ts, tr.WithUser(""))
			owners = append(owners, test.Traces[(i+1)%len(test.Traces)].User)
		}
		ts = append(ts, trace.Trace{})
		owners = append(owners, "nobody")

		got := atks.ReIdentifiesBatch(ts, owners)
		if len(got) != len(ts) {
			t.Fatalf("ReIdentifiesBatch returned %d results for %d pairs", len(got), len(ts))
		}
		for i := range ts {
			hit, name := atks.ReIdentifies(ts[i], owners[i])
			if got[i].Hit != hit || got[i].Attack != name {
				t.Fatalf("seed %d, pair %d (owner %q): batch (%v, %q) != scalar (%v, %q)",
					seed, i, owners[i], got[i].Hit, got[i].Attack, hit, name)
			}
		}
	}
}
