package attack

import (
	"math"
	"runtime"
	"sync"

	"mood/internal/poi"
	"mood/internal/trace"
)

// Batch identification. The re-audit and retrain loops score many
// traces against the same frozen profile set; the batch entry points
// here restructure that work without changing a single verdict bit:
//
//   - each attack freezes (or POI-extracts) every anonymous trace of
//     the batch exactly once, instead of once per Identify call;
//   - the AP scan goes profile-major in cache-resident blocks, with a
//     float32 quantized pruning pass (heatmap.Quant) ahead of the
//     exact float64 kernels;
//   - the audit question "does any profile beat the owner's" is
//     answered by an owner-seeded scan that stops at the first beating
//     profile instead of completing the argmin;
//   - one POI extraction feeds both the POI- and PIT-attacks when
//     their extractor configs match.
//
// Bit-identity rests on two facts proven in topTwo's comment: the
// early-exit bound nextUp(second-best) lets every profile that could
// win or tie complete its exact scan, and the (best, user, second)
// fold is then independent of scan order — so reordering profiles into
// blocks, or conservatively skipping provable losers, cannot change
// the verdict. The property tests in batch_test.go enforce this on
// random and adversarially tied data.

// nextUp returns the smallest float64 greater than x.
func nextUp(x float64) float64 { return math.Nextafter(x, math.Inf(1)) }

// topTwo folds completed exact profile scores into the best and
// second-best seen, with the explicit tie rule shared by the scalar
// and batch paths: on an exact score tie the lexicographically
// smallest user ID wins. Before this rule, ties fell to background
// insertion order — an order a profile-major batch scan reshuffles.
//
// bound() is the early-exit threshold handed to the exact kernels:
// nextUp(second) rather than second itself, so a profile whose true
// score equals the current second-best still completes its scan and
// reaches the tie-break (every kernel's partial sums are monotone
// non-negative, so a completed scan below the bound is exact and an
// abandoned one had a true score above second). Consequently the final
// (user, best, second) triple equals the true minimum, the smallest
// user among its ties, and the true second-smallest score — whatever
// order profiles were offered in, and however many provable losers a
// pruning pass withheld.
type topTwo struct {
	user   string
	best   float64
	second float64
	ok     bool
}

func newTopTwo() topTwo {
	return topTwo{best: math.Inf(1), second: math.Inf(1)}
}

// bound is the score at which a profile scan may abandon: reaching it
// means the profile can neither win nor tighten the runner-up.
func (k *topTwo) bound() float64 { return nextUp(k.second) }

// consider folds one completed exact score in.
func (k *topTwo) consider(user string, score float64) {
	switch {
	case !k.ok:
		k.user, k.best, k.ok = user, score, true
	case score < k.best || (score == k.best && user < k.user):
		k.second = k.best
		k.user, k.best = user, score
	case score < k.second:
		k.second = score
	}
}

// verdict renders the fold as a Verdict. Margin is +Inf when no second
// profile completed a scan (see Verdict.Margin).
func (k *topTwo) verdict() Verdict {
	if !k.ok {
		return Verdict{}
	}
	return Verdict{User: k.user, Score: k.best, Margin: k.second - k.best, OK: true}
}

// batchSpans fans [0, n) across GOMAXPROCS-bounded workers in
// contiguous spans. Deterministic despite the parallelism: each worker
// writes only its own output slots, so results are position-stable.
func batchSpans(n int, f func(lo, hi int)) {
	if n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(w*n/workers, (w+1)*n/workers)
	}
	wg.Wait()
}

// BatchIdentifier is implemented by attacks with a batch-optimized
// scan; BatchIdentify falls back to parallel scalar calls for attacks
// without one.
type BatchIdentifier interface {
	Attack
	// IdentifyBatch returns, for every trace, the same Verdict a
	// scalar Identify call would — bit-identical in user, score and
	// margin.
	IdentifyBatch(ts []trace.Trace) []Verdict
}

// poiCache shares one POI extraction per trace across the attacks of a
// batch pass: POIAttack and PIT are built on the same clustering, so
// when their extractor configs match the extraction runs once, not
// twice. A second distinct config resets the cache — sets mix at most
// a handful of attacks.
type poiCache struct {
	ts   []trace.Trace
	e    poi.Extractor
	ok   bool
	pois [][]poi.POI
	done []bool
}

// extract returns the POIs of every trace named in idxs (indices into
// c.ts), extracting missing entries in parallel.
func (c *poiCache) extract(e poi.Extractor, idxs []int) [][]poi.POI {
	if !c.ok || c.e != e {
		c.e, c.ok = e, true
		c.pois = make([][]poi.POI, len(c.ts))
		c.done = make([]bool, len(c.ts))
	}
	todo := make([]int, 0, len(idxs))
	for _, i := range idxs {
		if !c.done[i] {
			todo = append(todo, i)
		}
	}
	batchSpans(len(todo), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			i := todo[j]
			c.pois[i] = c.e.Extract(c.ts[i])
			c.done[i] = true
		}
	})
	return c.pois
}

// BatchIdentify scores every trace against every attack of the set
// with the batch kernels: out[ai][ti] is bit-identical to
// s[ai].Identify(ts[ti]). One POI extraction is shared between the
// POI- and PIT-attacks when their extractor configs match.
func BatchIdentify(s Set, ts []trace.Trace) [][]Verdict {
	out := make([][]Verdict, len(s))
	cache := poiCache{ts: ts}
	all := make([]int, len(ts))
	for i := range all {
		all[i] = i
	}
	for ai, atk := range s {
		switch a := atk.(type) {
		case *AP:
			out[ai] = a.IdentifyBatch(ts)
		case *POIAttack:
			if !a.scans() {
				out[ai] = make([]Verdict, len(ts))
				continue
			}
			out[ai] = a.identifyBatchPOIs(cache.extract(a.Extractor, all))
		case *PIT:
			if !a.scans() {
				out[ai] = make([]Verdict, len(ts))
				continue
			}
			out[ai] = a.identifyBatchPOIs(cache.extract(a.Extractor, all), ts)
		case BatchIdentifier:
			out[ai] = a.IdentifyBatch(ts)
		default:
			vs := make([]Verdict, len(ts))
			batchSpans(len(ts), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					vs[i] = atk.Identify(ts[i])
				}
			})
			out[ai] = vs
		}
	}
	return out
}

// ReIdent is one (trace, user) pair's outcome of a batch
// re-identification audit: Hit mirrors Set.ReIdentifies' boolean and
// Attack names the first attack (in set order) that linked the trace.
type ReIdent struct {
	Hit    bool
	Attack string
}

// ReIdentifiesBatch answers Set.ReIdentifies for many (trace, user)
// pairs in one pass, bit-identical pair by pair: attacks run in set
// order and a trace leaves the batch at its first hit, so the per-pair
// short-circuit semantics — and the work skipped by it — match the
// scalar predicate. Within each attack the batch wins three ways: one
// freeze/extraction per trace, the owner-seeded hit scans, and the
// shared POI extraction (see the package comment above).
func (s Set) ReIdentifiesBatch(ts []trace.Trace, users []string) []ReIdent {
	out := make([]ReIdent, len(ts))
	cache := poiCache{ts: ts}
	remaining := make([]int, len(ts))
	for i := range remaining {
		remaining[i] = i
	}
	for _, atk := range s {
		if len(remaining) == 0 {
			break
		}
		hits := make([]bool, len(remaining))
		switch a := atk.(type) {
		case *AP:
			batchSpans(len(remaining), func(lo, hi int) {
				for j := lo; j < hi; j++ {
					i := remaining[j]
					hits[j] = a.hitOne(ts[i], users[i])
				}
			})
		case *POIAttack:
			if !a.scans() {
				break
			}
			ps := cache.extract(a.Extractor, remaining)
			batchSpans(len(remaining), func(lo, hi int) {
				for j := lo; j < hi; j++ {
					i := remaining[j]
					hits[j] = a.hitPOIs(ps[i], users[i])
				}
			})
		case *PIT:
			if !a.scans() {
				break
			}
			ps := cache.extract(a.Extractor, remaining)
			batchSpans(len(remaining), func(lo, hi int) {
				for j := lo; j < hi; j++ {
					i := remaining[j]
					hits[j] = a.hitChain(a.buildChain(ps[i], ts[i]), users[i])
				}
			})
		default:
			batchSpans(len(remaining), func(lo, hi int) {
				for j := lo; j < hi; j++ {
					i := remaining[j]
					v := atk.Identify(ts[i])
					hits[j] = v.OK && v.User == users[i]
				}
			})
		}
		name := atk.Name()
		next := remaining[:0]
		for j, i := range remaining {
			if hits[j] {
				out[i] = ReIdent{Hit: true, Attack: name}
			} else {
				next = append(next, i)
			}
		}
		remaining = next
	}
	return out
}
