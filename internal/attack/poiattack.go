package attack

import (
	"fmt"
	"math"

	"mood/internal/geo"
	"mood/internal/poi"
	"mood/internal/trace"
)

// POIAttack is the attack of Primault et al. [27]: each user's profile
// is the set of their Points of Interest; an anonymous trace is
// attributed to the profile whose POIs are geographically closest.
//
// Unlike AP, this attack needs dwell structure: if no POIs can be
// extracted from the anonymous trace (e.g. after heavy perturbation),
// the attack produces no verdict — which counts as failed
// re-identification.
type POIAttack struct {
	// Extractor configures POI clustering; the zero value uses the
	// paper's 200 m / 1 h parameters.
	Extractor poi.Extractor

	profiles []poiProfile
	trained  bool
}

type poiProfile struct {
	user string
	pois []poi.POI
}

var _ Attack = (*POIAttack)(nil)

// NewPOIAttack returns a POI-attack with the paper's parameters.
func NewPOIAttack() *POIAttack {
	return &POIAttack{Extractor: poi.NewExtractor()}
}

// Name implements Attack.
func (*POIAttack) Name() string { return "POI" }

// Train implements Attack. Users without dwell structure yield no
// profile; a background where *nobody* can be profiled is still a valid
// training outcome (the attack will simply never identify anyone), but
// an empty background is a caller error.
func (a *POIAttack) Train(background []trace.Trace) error {
	if len(background) == 0 {
		return fmt.Errorf("attack: POI training needs background traces")
	}
	a.profiles = a.profiles[:0]
	for _, t := range background {
		pois := a.Extractor.Extract(t)
		if len(pois) == 0 {
			continue // user without dwell structure cannot be profiled
		}
		a.profiles = append(a.profiles, poiProfile{user: t.User, pois: pois})
	}
	a.trained = true
	return nil
}

// scans reports whether Identify can ever produce a verdict.
func (a *POIAttack) scans() bool { return a.trained && len(a.profiles) > 0 }

// Identify implements Attack.
func (a *POIAttack) Identify(t trace.Trace) Verdict {
	if !a.scans() {
		return Verdict{}
	}
	return a.identifyPOIs(a.Extractor.Extract(t))
}

// identifyPOIs is the profile scan over pre-extracted anonymous POIs,
// shared by the scalar and batch paths. Completed distances fold
// through topTwo: ties break toward the lowest user ID (not profile
// insertion order) and the runner-up feeds Verdict.Margin.
func (a *POIAttack) identifyPOIs(pois []poi.POI) Verdict {
	if len(pois) == 0 {
		return Verdict{}
	}
	weights := poi.Weights(pois)
	k := newTopTwo()
	for pi := range a.profiles {
		p := &a.profiles[pi]
		bound := k.bound()
		if d := poiSetDistance(pois, weights, p.pois, bound); d < bound {
			k.consider(p.user, d)
		}
	}
	return k.verdict()
}

// IdentifyBatch implements BatchIdentifier: POIs are extracted once
// per trace — in parallel, and shared with the PIT-attack by
// Set-level batch entry points when the extractor configs match.
func (a *POIAttack) IdentifyBatch(ts []trace.Trace) []Verdict {
	if !a.scans() {
		return make([]Verdict, len(ts))
	}
	return a.identifyBatchPOIs(extractPOIs(a.Extractor, ts))
}

// identifyBatchPOIs scans pre-extracted POI sets in parallel spans.
func (a *POIAttack) identifyBatchPOIs(pois [][]poi.POI) []Verdict {
	out := make([]Verdict, len(pois))
	batchSpans(len(pois), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = a.identifyPOIs(pois[i])
		}
	})
	return out
}

// hitPOIs is the owner-seeded audit scan: does Identify attribute a
// trace with these POIs to owner? See AP.hitOne for the argument; the
// structure is identical with poiSetDistance as the exact scorer.
func (a *POIAttack) hitPOIs(pois []poi.POI, owner string) bool {
	if !a.scans() || len(pois) == 0 {
		return false
	}
	weights := poi.Weights(pois)
	so := math.Inf(1)
	seen := false
	for pi := range a.profiles {
		p := &a.profiles[pi]
		if p.user != owner {
			continue
		}
		if d := poiSetDistance(pois, weights, p.pois, math.Inf(1)); d < so {
			so, seen = d, true
		}
	}
	if !seen {
		return false
	}
	bound := nextUp(so)
	for pi := range a.profiles {
		p := &a.profiles[pi]
		if p.user == owner {
			continue
		}
		d := poiSetDistance(pois, weights, p.pois, bound)
		if d < bound && (d < so || (d == so && p.user < owner)) {
			return false
		}
	}
	return true
}

// extractPOIs runs e.Extract over every trace in parallel; the result
// feeds the POI- and PIT-batch scans.
func extractPOIs(e poi.Extractor, ts []trace.Trace) [][]poi.POI {
	out := make([][]poi.POI, len(ts))
	batchSpans(len(ts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = e.Extract(ts[i])
		}
	})
	return out
}

// poiSetDistance is the weighted mean distance from each anonymous POI
// to the nearest profile POI. Weighting by record mass makes home/work
// dominate, as in the original attack's similarity function. Every term
// is non-negative, so the accumulation abandons a profile as soon as the
// partial distance reaches bound (the best score so far); a completed
// scan returns the exact distance, so verdicts match a full scan.
func poiSetDistance(anon []poi.POI, weights []float64, profile []poi.POI, bound float64) float64 {
	var d float64
	for i, ap := range anon {
		best := math.Inf(1)
		for _, pp := range profile {
			if dd := geo.FastDistance(ap.Center, pp.Center); dd < best {
				best = dd
			}
		}
		d += weights[i] * best
		if d >= bound {
			return d
		}
	}
	return d
}
