package attack

import (
	"fmt"
	"math"

	"mood/internal/geo"
	"mood/internal/poi"
	"mood/internal/trace"
)

// POIAttack is the attack of Primault et al. [27]: each user's profile
// is the set of their Points of Interest; an anonymous trace is
// attributed to the profile whose POIs are geographically closest.
//
// Unlike AP, this attack needs dwell structure: if no POIs can be
// extracted from the anonymous trace (e.g. after heavy perturbation),
// the attack produces no verdict — which counts as failed
// re-identification.
type POIAttack struct {
	// Extractor configures POI clustering; the zero value uses the
	// paper's 200 m / 1 h parameters.
	Extractor poi.Extractor

	profiles []poiProfile
	trained  bool
}

type poiProfile struct {
	user string
	pois []poi.POI
}

var _ Attack = (*POIAttack)(nil)

// NewPOIAttack returns a POI-attack with the paper's parameters.
func NewPOIAttack() *POIAttack {
	return &POIAttack{Extractor: poi.NewExtractor()}
}

// Name implements Attack.
func (*POIAttack) Name() string { return "POI" }

// Train implements Attack. Users without dwell structure yield no
// profile; a background where *nobody* can be profiled is still a valid
// training outcome (the attack will simply never identify anyone), but
// an empty background is a caller error.
func (a *POIAttack) Train(background []trace.Trace) error {
	if len(background) == 0 {
		return fmt.Errorf("attack: POI training needs background traces")
	}
	a.profiles = a.profiles[:0]
	for _, t := range background {
		pois := a.Extractor.Extract(t)
		if len(pois) == 0 {
			continue // user without dwell structure cannot be profiled
		}
		a.profiles = append(a.profiles, poiProfile{user: t.User, pois: pois})
	}
	a.trained = true
	return nil
}

// Identify implements Attack.
func (a *POIAttack) Identify(t trace.Trace) Verdict {
	if !a.trained || len(a.profiles) == 0 {
		return Verdict{}
	}
	pois := a.Extractor.Extract(t)
	if len(pois) == 0 {
		return Verdict{}
	}
	weights := poi.Weights(pois)
	best := Verdict{Score: math.Inf(1)}
	for _, p := range a.profiles {
		if d := poiSetDistance(pois, weights, p.pois, best.Score); d < best.Score {
			best = Verdict{User: p.user, Score: d, OK: true}
		}
	}
	return best
}

// poiSetDistance is the weighted mean distance from each anonymous POI
// to the nearest profile POI. Weighting by record mass makes home/work
// dominate, as in the original attack's similarity function. Every term
// is non-negative, so the accumulation abandons a profile as soon as the
// partial distance reaches bound (the best score so far); a completed
// scan returns the exact distance, so verdicts match a full scan.
func poiSetDistance(anon []poi.POI, weights []float64, profile []poi.POI, bound float64) float64 {
	var d float64
	for i, ap := range anon {
		best := math.Inf(1)
		for _, pp := range profile {
			if dd := geo.FastDistance(ap.Center, pp.Center); dd < best {
				best = dd
			}
		}
		d += weights[i] * best
		if d >= bound {
			return d
		}
	}
	return d
}
