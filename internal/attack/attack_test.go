package attack

import (
	"sync"
	"testing"

	"mood/internal/geo"
	"mood/internal/lppm"
	"mood/internal/mathx"
	"mood/internal/synth"
	"mood/internal/trace"
)

// testSplit generates a small phone dataset and splits it into
// background (train) and anonymous (test) halves, as the paper does.
func testSplit(t *testing.T, seed uint64) (train, test trace.Dataset) {
	t.Helper()
	cfg := synth.PrivamovLike(synth.ScaleTiny, seed)
	cfg.NumUsers = 10
	cfg.Days = 8
	cfg.DriftFraction = 0 // stable users: attacks should shine
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d.SplitTrainTest(0.5, 20)
}

func allAttacks() Set {
	return Set{NewAP(), NewPOIAttack(), NewPIT()}
}

func TestAttacksReIdentifyStableUsers(t *testing.T) {
	train, test := testSplit(t, 11)
	for _, a := range allAttacks() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			if err := a.Train(train.Traces); err != nil {
				t.Fatal(err)
			}
			hits := 0
			verdicts := 0
			for _, tr := range test.Traces {
				v := a.Identify(tr)
				if v.OK {
					verdicts++
					if v.User == tr.User {
						hits++
					}
				}
			}
			if verdicts == 0 {
				t.Fatal("attack produced no verdicts at all")
			}
			// Stable synthetic users with distinctive homes: a real
			// attack implementation re-identifies most of them.
			if hits*2 < test.NumUsers() {
				t.Fatalf("%s re-identified only %d/%d stable users", a.Name(), hits, test.NumUsers())
			}
		})
	}
}

func TestAttacksFailBeforeTraining(t *testing.T) {
	_, test := testSplit(t, 12)
	for _, a := range allAttacks() {
		if v := a.Identify(test.Traces[0]); v.OK {
			t.Fatalf("%s produced a verdict before training", a.Name())
		}
	}
}

func TestAttacksOnEmptyTrace(t *testing.T) {
	train, _ := testSplit(t, 13)
	for _, a := range allAttacks() {
		if err := a.Train(train.Traces); err != nil {
			t.Fatal(err)
		}
		if v := a.Identify(trace.Trace{}); v.OK {
			t.Fatalf("%s identified an empty trace", a.Name())
		}
	}
}

func TestTrainOnEmptyBackgroundErrors(t *testing.T) {
	for _, a := range allAttacks() {
		if err := a.Train(nil); err == nil {
			t.Fatalf("%s accepted empty background", a.Name())
		}
	}
}

func TestAPSurvivesModerateNoiseButPOIDoesNot(t *testing.T) {
	// The paper's core observation about Geo-I at medium epsilon: the
	// 800 m heatmap cells absorb 200 m noise so AP keeps working, while
	// POI extraction (200 m clusters) is destroyed, silencing POI/PIT.
	train, test := testSplit(t, 14)
	ap := NewAP()
	pa := NewPOIAttack()
	if err := TrainAll(Set{ap, pa}, train.Traces); err != nil {
		t.Fatal(err)
	}
	geoi := lppm.NewGeoI()

	apHits, poiHitsNoisy, poiHitsRaw := 0, 0, 0
	for _, tr := range test.Traces {
		if v := pa.Identify(tr); v.OK && v.User == tr.User {
			poiHitsRaw++
		}
		obf, err := geoi.Obfuscate(mathx.DeriveRand(99, "test", tr.User), tr)
		if err != nil {
			t.Fatal(err)
		}
		if v := ap.Identify(obf); v.OK && v.User == tr.User {
			apHits++
		}
		if v := pa.Identify(obf); v.OK && v.User == tr.User {
			poiHitsNoisy++
		}
	}
	if apHits*2 < test.NumUsers() {
		t.Fatalf("AP under Geo-I hit only %d/%d users; cells should absorb the noise",
			apHits, test.NumUsers())
	}
	// The noise must degrade POI-based profiling: clusters shatter, only
	// sparse overnight pairs survive.
	if poiHitsNoisy >= poiHitsRaw && poiHitsRaw > 0 {
		t.Fatalf("POI attack unaffected by Geo-I: %d hits noisy vs %d raw", poiHitsNoisy, poiHitsRaw)
	}
}

func TestSetReIdentifies(t *testing.T) {
	train, test := testSplit(t, 15)
	set := allAttacks()
	if err := TrainAll(set, train.Traces); err != nil {
		t.Fatal(err)
	}
	anyHit := false
	for _, tr := range test.Traces {
		if hit, name := set.ReIdentifies(tr, tr.User); hit {
			anyHit = true
			if name == "" {
				t.Fatal("hit without attack name")
			}
		}
	}
	if !anyHit {
		t.Fatal("no user re-identified by any attack on raw data")
	}
	if names := set.Names(); len(names) != 3 || names[0] != "AP" {
		t.Fatalf("names = %v", names)
	}
}

func TestIdentifyConcurrentSafety(t *testing.T) {
	train, test := testSplit(t, 16)
	set := allAttacks()
	if err := TrainAll(set, train.Traces); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, tr := range test.Traces {
				for _, a := range set {
					_ = a.Identify(tr)
				}
			}
		}()
	}
	wg.Wait() // run with -race to catch unsynchronised state
}

func TestRetrainReplacesProfiles(t *testing.T) {
	train1, test1 := testSplit(t, 17)
	ap := NewAP()
	if err := ap.Train(train1.Traces); err != nil {
		t.Fatal(err)
	}
	before := ap.Identify(test1.Traces[0])

	// Retrain on a disjoint city: old profiles must be gone.
	cfg := synth.GeolifeLike(synth.ScaleTiny, 55)
	cfg.NumUsers = 6
	cfg.Days = 6
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train2, _ := d.SplitTrainTest(0.5, 10)
	if err := ap.Train(train2.Traces); err != nil {
		t.Fatal(err)
	}
	after := ap.Identify(test1.Traces[0])
	if after.OK && after.User == before.User {
		// The Geolife users live in Beijing; a Lyon trace must not map
		// to the same user label as before.
		t.Fatalf("retraining did not replace profiles: %v -> %v", before.User, after.User)
	}
}

func TestVerdictScoreOrdering(t *testing.T) {
	train, test := testSplit(t, 18)
	ap := NewAP()
	if err := ap.Train(train.Traces); err != nil {
		t.Fatal(err)
	}
	// The verdict score of the true user should be no worse than the
	// score the attack would assign to a totally foreign trace.
	own := ap.Identify(test.Traces[0])
	cfg := synth.GeolifeLike(synth.ScaleTiny, 77)
	cfg.NumUsers = 6
	cfg.Days = 6
	foreign := synth.MustGenerate(cfg)
	far := ap.Identify(foreign.Traces[0])
	if !own.OK || !far.OK {
		t.Fatal("expected verdicts for both traces")
	}
	if own.Score >= far.Score {
		t.Fatalf("own-city score %v should beat foreign-city score %v", own.Score, far.Score)
	}
}

func TestAPDivergenceVariants(t *testing.T) {
	train, test := testSplit(t, 19)
	for _, div := range []Divergence{DivTopsoe, DivJensenShannon, DivL1} {
		ap := NewAP()
		ap.Divergence = div
		if err := ap.Train(train.Traces); err != nil {
			t.Fatal(err)
		}
		hits := 0
		for _, tr := range test.Traces {
			if v := ap.Identify(tr); v.OK && v.User == tr.User {
				hits++
			}
		}
		// All three divergences rank profiles well on stable users.
		if hits*2 < test.NumUsers() {
			t.Errorf("divergence %s re-identified only %d/%d", div, hits, test.NumUsers())
		}
	}
	if DivTopsoe.String() != "topsoe" || DivL1.String() != "l1" || DivJensenShannon.String() != "jensen-shannon" {
		t.Error("divergence names changed")
	}
}

func TestAPJensenShannonIsHalfTopsoe(t *testing.T) {
	train, test := testSplit(t, 20)
	top := NewAP()
	js := NewAP()
	js.Divergence = DivJensenShannon
	if err := TrainAll(Set{top, js}, train.Traces); err != nil {
		t.Fatal(err)
	}
	vt := top.Identify(test.Traces[0])
	vj := js.Identify(test.Traces[0])
	if vt.User != vj.User {
		t.Fatal("JS and Topsoe must rank identically")
	}
	if diff := vt.Score/2 - vj.Score; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("JS %v != Topsoe/2 %v", vj.Score, vt.Score/2)
	}
}

func TestAPTimeSlices(t *testing.T) {
	train, test := testSplit(t, 23)
	for _, slices := range []int{1, 2, 4} {
		ap := NewAP()
		ap.TimeSlices = slices
		if err := ap.Train(train.Traces); err != nil {
			t.Fatal(err)
		}
		hits := 0
		for _, tr := range test.Traces {
			if v := ap.Identify(tr); v.OK && v.User == tr.User {
				hits++
			}
		}
		if hits*2 < test.NumUsers() {
			t.Errorf("AP with %d slices re-identified only %d/%d", slices, hits, test.NumUsers())
		}
	}
}

func TestAPTimeSlicesDistinguishScheduleTwins(t *testing.T) {
	// Two users share the same two places but visit them at opposite
	// times of day. A single time-agnostic heatmap cannot tell them
	// apart; per-slice heatmaps can.
	home := geo.Point{Lat: 45.7, Lon: 4.8}
	work := geo.Offset(home, 5000, 0)
	mk := func(user string, nightOwl bool) trace.Trace {
		var rs []trace.Record
		for day := 0; day < 6; day++ {
			base := int64(day) * 86400
			for h := 0; h < 24; h++ {
				p := home
				atWork := h >= 9 && h < 17
				if nightOwl {
					atWork = h >= 21 || h < 5
				}
				if atWork {
					p = work
				}
				rs = append(rs, trace.At(p, base+int64(h)*3600))
			}
		}
		return trace.New(user, rs)
	}
	background := []trace.Trace{mk("day-worker", false), mk("night-worker", true)}
	// Fresh traces with the same schedules.
	fresh := mk("day-worker", false)
	fresh.Records = fresh.Records[:100]

	sliced := NewAP()
	sliced.TimeSlices = 4
	if err := sliced.Train(background); err != nil {
		t.Fatal(err)
	}
	v := sliced.Identify(fresh)
	if !v.OK || v.User != "day-worker" {
		t.Fatalf("sliced AP verdict = %+v, want day-worker", v)
	}
}
