package attack

import (
	"fmt"
	"math"

	"mood/internal/mmc"
	"mood/internal/poi"
	"mood/internal/trace"
)

// PIT is the de-anonymization attack of Gambs et al. [16]: users are
// profiled as Mobility Markov Chains and an anonymous trace is
// attributed to the chain minimizing the stats-prox distance (the
// combination of stationary and proximity distances the original paper
// found most effective).
//
// Like POIAttack, PIT needs dwell structure to build a chain; a trace
// that yields no POIs produces no verdict.
type PIT struct {
	// Extractor configures the POI clustering that defines MMC states.
	Extractor poi.Extractor

	profiles []pitProfile
	trained  bool
}

type pitProfile struct {
	user  string
	chain mmc.Chain
	// stat is the chain's stationary distribution, computed once at
	// Train time; StatsProx needs it for every comparison and the power
	// iteration is the expensive part.
	stat []float64
}

var _ Attack = (*PIT)(nil)

// NewPIT returns a PIT-attack with the paper's POI parameters.
func NewPIT() *PIT {
	return &PIT{Extractor: poi.NewExtractor()}
}

// Name implements Attack.
func (*PIT) Name() string { return "PIT" }

// Train implements Attack. As with POIAttack, users without dwell
// structure yield no chain; only an empty background is an error.
func (a *PIT) Train(background []trace.Trace) error {
	if len(background) == 0 {
		return fmt.Errorf("attack: PIT training needs background traces")
	}
	a.profiles = a.profiles[:0]
	for _, t := range background {
		c := mmc.Build(a.Extractor, t)
		if c.Empty() {
			continue
		}
		a.profiles = append(a.profiles, pitProfile{user: t.User, chain: c, stat: c.Stationary()})
	}
	a.trained = true
	return nil
}

// scans reports whether Identify can ever produce a verdict.
func (a *PIT) scans() bool { return a.trained && len(a.profiles) > 0 }

// Identify implements Attack.
func (a *PIT) Identify(t trace.Trace) Verdict {
	if !a.scans() {
		return Verdict{}
	}
	return a.identifyChain(mmc.Build(a.Extractor, t))
}

// identifyChain is the profile scan over the anonymous chain, shared
// by the scalar and batch paths. The chain's stationary distribution
// is fixed across the scan; computing it once and abandoning profiles
// whose stationary part alone exceeds the topTwo bound keeps the loop
// cheap without changing the argmin. Completed distances fold through
// topTwo: ties break toward the lowest user ID and the runner-up feeds
// Verdict.Margin.
func (a *PIT) identifyChain(c mmc.Chain) Verdict {
	if c.Empty() {
		return Verdict{}
	}
	stat := c.Stationary()
	k := newTopTwo()
	for pi := range a.profiles {
		p := &a.profiles[pi]
		bound := k.bound()
		if d := mmc.StatsProxBounded(c, p.chain, stat, p.stat, bound); d < bound {
			k.consider(p.user, d)
		}
	}
	return k.verdict()
}

// buildChain builds the anonymous chain from pre-extracted POIs — the
// Set-level batch paths extract once and share with the POI-attack.
func (a *PIT) buildChain(pois []poi.POI, t trace.Trace) mmc.Chain {
	return mmc.BuildFromPOIs(a.Extractor, pois, t)
}

// IdentifyBatch implements BatchIdentifier: one POI extraction and one
// chain build per trace, fanned out across cores.
func (a *PIT) IdentifyBatch(ts []trace.Trace) []Verdict {
	if !a.scans() {
		return make([]Verdict, len(ts))
	}
	return a.identifyBatchPOIs(extractPOIs(a.Extractor, ts), ts)
}

// identifyBatchPOIs scans traces with pre-extracted POIs in parallel.
func (a *PIT) identifyBatchPOIs(pois [][]poi.POI, ts []trace.Trace) []Verdict {
	out := make([]Verdict, len(ts))
	batchSpans(len(ts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = a.identifyChain(a.buildChain(pois[i], ts[i]))
		}
	})
	return out
}

// hitChain is the owner-seeded audit scan: does Identify attribute the
// trace behind chain c to owner? See AP.hitOne for the argument; the
// structure is identical with StatsProxBounded as the exact scorer.
func (a *PIT) hitChain(c mmc.Chain, owner string) bool {
	if !a.scans() || c.Empty() {
		return false
	}
	stat := c.Stationary()
	so := math.Inf(1)
	seen := false
	for pi := range a.profiles {
		p := &a.profiles[pi]
		if p.user != owner {
			continue
		}
		if d := mmc.StatsProxBounded(c, p.chain, stat, p.stat, math.Inf(1)); d < so {
			so, seen = d, true
		}
	}
	if !seen {
		return false
	}
	bound := nextUp(so)
	for pi := range a.profiles {
		p := &a.profiles[pi]
		if p.user == owner {
			continue
		}
		d := mmc.StatsProxBounded(c, p.chain, stat, p.stat, bound)
		if d < bound && (d < so || (d == so && p.user < owner)) {
			return false
		}
	}
	return true
}
