package attack

import (
	"fmt"
	"math"

	"mood/internal/mmc"
	"mood/internal/poi"
	"mood/internal/trace"
)

// PIT is the de-anonymization attack of Gambs et al. [16]: users are
// profiled as Mobility Markov Chains and an anonymous trace is
// attributed to the chain minimizing the stats-prox distance (the
// combination of stationary and proximity distances the original paper
// found most effective).
//
// Like POIAttack, PIT needs dwell structure to build a chain; a trace
// that yields no POIs produces no verdict.
type PIT struct {
	// Extractor configures the POI clustering that defines MMC states.
	Extractor poi.Extractor

	profiles []pitProfile
	trained  bool
}

type pitProfile struct {
	user  string
	chain mmc.Chain
	// stat is the chain's stationary distribution, computed once at
	// Train time; StatsProx needs it for every comparison and the power
	// iteration is the expensive part.
	stat []float64
}

var _ Attack = (*PIT)(nil)

// NewPIT returns a PIT-attack with the paper's POI parameters.
func NewPIT() *PIT {
	return &PIT{Extractor: poi.NewExtractor()}
}

// Name implements Attack.
func (*PIT) Name() string { return "PIT" }

// Train implements Attack. As with POIAttack, users without dwell
// structure yield no chain; only an empty background is an error.
func (a *PIT) Train(background []trace.Trace) error {
	if len(background) == 0 {
		return fmt.Errorf("attack: PIT training needs background traces")
	}
	a.profiles = a.profiles[:0]
	for _, t := range background {
		c := mmc.Build(a.Extractor, t)
		if c.Empty() {
			continue
		}
		a.profiles = append(a.profiles, pitProfile{user: t.User, chain: c, stat: c.Stationary()})
	}
	a.trained = true
	return nil
}

// Identify implements Attack.
func (a *PIT) Identify(t trace.Trace) Verdict {
	if !a.trained || len(a.profiles) == 0 {
		return Verdict{}
	}
	c := mmc.Build(a.Extractor, t)
	if c.Empty() {
		return Verdict{}
	}
	// The anonymous chain's stationary distribution is fixed across the
	// scan; computing it once and abandoning profiles whose stationary
	// part alone exceeds the best score keeps the loop cheap without
	// changing the argmin.
	stat := c.Stationary()
	best := Verdict{Score: math.Inf(1)}
	for _, p := range a.profiles {
		if d := mmc.StatsProxBounded(c, p.chain, stat, p.stat, best.Score); d < best.Score {
			best = Verdict{User: p.user, Score: d, OK: true}
		}
	}
	if math.IsInf(best.Score, 1) {
		return Verdict{}
	}
	return best
}
