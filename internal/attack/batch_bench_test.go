package attack

import (
	"testing"

	"mood/internal/synth"
	"mood/internal/trace"
)

// benchBatchEnv builds a many-profile workload: with only a handful of
// users the per-trace freeze dominates Identify and batching has little
// to bite on, so the batch benchmarks train against a large population
// where the O(profiles) scan is the cost that matters — the regime the
// audit pass and the dynamic-protection oracle actually run in.
func benchBatchEnv(b *testing.B, users, traces int) (Set, []trace.Trace, []string) {
	b.Helper()
	cfg := synth.PrivamovLike(synth.ScaleTiny, 11)
	cfg.NumUsers = users
	cfg.Days = 8
	cfg.DriftFraction = 0
	d, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	train, test := d.SplitTrainTest(0.5, 20)
	atks := Set{NewAP(), NewPOIAttack(), NewPIT()}
	if err := TrainAll(atks, train.Traces); err != nil {
		b.Fatal(err)
	}
	if test.NumUsers() == 0 {
		b.Fatal("no test users")
	}
	ts := make([]trace.Trace, 0, traces)
	owners := make([]string, 0, traces)
	for len(ts) < traces {
		tr := test.Traces[len(ts)%len(test.Traces)]
		ts = append(ts, tr.WithUser(""))
		owners = append(owners, tr.User)
	}
	return atks, ts, owners
}

// BenchmarkBatchIdentify compares the scalar and batched identification
// paths on the workloads BENCH_batch.json records: "AP" is raw
// identification throughput (one verdict per trace), "audit" is the
// service-tier re-audit predicate (first-hit-wins across the full
// attack set, owner-seeded in the batch path). The scalar variants loop
// the public one-trace APIs exactly as the audit pass did before
// batching.
func BenchmarkBatchIdentify(b *testing.B) {
	atks, ts, owners := benchBatchEnv(b, 192, 64)
	ap := atks[0].(*AP)

	b.Run("AP/scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, tr := range ts {
				ap.Identify(tr)
			}
		}
	})
	b.Run("AP/batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if vs := ap.IdentifyBatch(ts); len(vs) != len(ts) {
				b.Fatal("short batch")
			}
		}
	})
	b.Run("audit/scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, tr := range ts {
				atks.ReIdentifies(tr, owners[j])
			}
		}
	})
	b.Run("audit/batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if rs := atks.ReIdentifiesBatch(ts, owners); len(rs) != len(ts) {
				b.Fatal("short batch")
			}
		}
	})
}
