// Package synth generates synthetic mobility datasets that stand in for
// the four gated/offline datasets of the paper (MDC, Privamov, Geolife,
// Cabspotting — Table 1). See DESIGN.md for why this substitution
// preserves the evaluated behaviour: the experiments compare LPPMs and
// attacks *relative to each other* on datasets whose key property is the
// per-user distinctiveness of mobility.
//
// The generator models a city with residential and work clusters plus
// shared venues, and two kinds of inhabitants:
//
//   - phone users (commuters/students/roamers) with personal POIs, daily
//     schedules, optional mid-period behaviour drift;
//   - taxis (Cabspotting) whose fares concentrate around a per-cab
//     preferred zone of varying tightness, reproducing the "homogeneous
//     fleet, half naturally protected" effect.
//
// Everything is deterministic in Config.Seed.
package synth

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"mood/internal/geo"
	"mood/internal/mathx"
	"mood/internal/trace"
)

// Epoch is the synthetic time origin (2019-01-01 00:00:00 UTC, a Tuesday).
const Epoch int64 = 1546300800

// Config fully describes a synthetic dataset.
type Config struct {
	Name     string
	Center   geo.Point
	Radius   float64 // city radius in meters
	NumUsers int
	Days     int
	Seed     uint64

	// TaxiFraction is the share of users simulated as taxis (1 for
	// Cabspotting-like fleets, 0 for phone datasets).
	TaxiFraction float64

	// HomeClusters and WorkClusters control how many residential /
	// employment areas exist; fewer clusters mean more users share the
	// same 800 m heatmap cells and become harder to tell apart.
	HomeClusters int
	WorkClusters int
	// ClusterRadius is the spatial spread of each cluster in meters.
	ClusterRadius float64

	// DriftFraction is the share of users whose habits change at the
	// middle of the period (home/work move), which defeats profiling
	// that was trained on the first half.
	DriftFraction float64

	// CourierFraction is the share of phone users simulated as route
	// workers (couriers, delivery drivers): every day they drive the
	// same distinctive multi-stop route across the city. Their mobility
	// survives noise, dummies and heatmap confusion — these are the
	// orphan users MooD's fine-grained stage exists for.
	CourierFraction float64

	// ZoneSigmaMin/Max bound the per-taxi fare-zone spread. A taxi with
	// a small sigma works a distinctive neighbourhood; a large sigma
	// roams the whole city.
	ZoneSigmaMin, ZoneSigmaMax float64

	// DwellSample and MoveSample are the GPS sampling periods while
	// stationary and while moving.
	DwellSample time.Duration
	MoveSample  time.Duration

	// GPSNoise is the standard deviation of the positioning error in
	// meters.
	GPSNoise float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("synth: empty dataset name")
	case c.NumUsers <= 0:
		return fmt.Errorf("synth: NumUsers = %d", c.NumUsers)
	case c.Days <= 0:
		return fmt.Errorf("synth: Days = %d", c.Days)
	case c.Radius <= 0:
		return fmt.Errorf("synth: Radius = %v", c.Radius)
	case c.TaxiFraction < 0 || c.TaxiFraction > 1:
		return fmt.Errorf("synth: TaxiFraction = %v", c.TaxiFraction)
	}
	return nil
}

// Generate builds the dataset described by cfg.
func Generate(cfg Config) (trace.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return trace.Dataset{}, err
	}
	city := newCity(cfg)

	numTaxis := int(float64(cfg.NumUsers)*cfg.TaxiFraction + 0.5)
	numCouriers := int(float64(cfg.NumUsers-numTaxis)*cfg.CourierFraction + 0.5)
	traces := make([]trace.Trace, 0, cfg.NumUsers)
	for i := 0; i < cfg.NumUsers; i++ {
		user := userID(cfg.Name, i)
		rng := mathx.DeriveRand(cfg.Seed, "synth", cfg.Name, user)
		var tr trace.Trace
		switch {
		case i < numTaxis:
			tr = simulateTaxi(cfg, city, user, rng)
		case i < numTaxis+numCouriers:
			tr = simulateCourier(cfg, city, user, rng)
		default:
			tr = simulatePhoneUser(cfg, city, user, rng)
		}
		traces = append(traces, tr)
	}
	d := trace.NewDataset(cfg.Name, traces)
	if err := d.Validate(); err != nil {
		return trace.Dataset{}, fmt.Errorf("synth: generated invalid dataset: %w", err)
	}
	return d, nil
}

// MustGenerate is Generate for callers with static configs (tests,
// examples); it panics on error.
func MustGenerate(cfg Config) trace.Dataset {
	d, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func userID(dataset string, i int) string {
	return dataset + "-u" + pad3(i)
}

func pad3(i int) string {
	s := strconv.Itoa(i)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}

// city holds the shared geography drawn once per dataset.
type city struct {
	cfg          Config
	homeClusters []geo.Point
	workClusters []geo.Point
	venues       []geo.Point // shared leisure/shopping places
	downtown     geo.Point
}

func newCity(cfg Config) *city {
	rng := mathx.DeriveRand(cfg.Seed, "synth", cfg.Name, "city")
	c := &city{cfg: cfg, downtown: cfg.Center}
	nh := cfg.HomeClusters
	if nh <= 0 {
		nh = 1
	}
	nw := cfg.WorkClusters
	if nw <= 0 {
		nw = 1
	}
	for i := 0; i < nh; i++ {
		c.homeClusters = append(c.homeClusters, randInDisc(rng, cfg.Center, cfg.Radius))
	}
	for i := 0; i < nw; i++ {
		// Work areas lean toward the center (office districts).
		c.workClusters = append(c.workClusters, randInDisc(rng, cfg.Center, cfg.Radius*0.6))
	}
	nv := 8 + cfg.NumUsers/10
	for i := 0; i < nv; i++ {
		c.venues = append(c.venues, randInDisc(rng, cfg.Center, cfg.Radius*0.8))
	}
	return c
}

// randInDisc draws a point uniformly in the disc of the given radius.
func randInDisc(rng *mathx.Rand, center geo.Point, radius float64) geo.Point {
	r := radius * math.Sqrt(rng.Float64())
	theta := rng.Float64() * 360
	return geo.Destination(center, theta, r)
}

// randNear draws a point from an isotropic Gaussian around center.
func randNear(rng *mathx.Rand, center geo.Point, sigma float64) geo.Point {
	return geo.Offset(center, rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
}
