package synth

import (
	"mood/internal/geo"
	"mood/internal/mathx"
	"mood/internal/trace"
)

// courier is the behavioural program of a route worker: a fixed,
// personal sequence of stops spanning the city, driven every working
// day, plus a home base. The route corridor dominates the user's
// heatmap, is unique to the user, and is wide enough (city-scale) that
// kilometre-level obfuscation cannot hide it — the archetype of the
// paper's orphan user.
type courier struct {
	home  geo.Point
	stops []geo.Point
	speed float64
}

func newCourier(cfg Config, c *city, rng *mathx.Rand) courier {
	co := courier{
		home:  randNear(rng, mathx.Choice(rng, c.homeClusters), cfg.ClusterRadius),
		speed: 8 + rng.Float64()*5,
	}
	// A distinctive loop of 8-12 stops spread over the whole city.
	n := 8 + rng.Intn(5)
	for i := 0; i < n; i++ {
		co.stops = append(co.stops, randInDisc(rng, cfg.Center, cfg.Radius*0.95))
	}
	return co
}

// simulateCourier runs the courier for the whole period.
func simulateCourier(cfg Config, c *city, user string, rng *mathx.Rand) trace.Trace {
	co := newCourier(cfg, c, rng)
	s := newSampler(cfg, rng)
	// Couriers carry a vehicle tracker that pings densely while driving,
	// so the route corridor dominates their heatmap.
	if s.movePeriod > 45 {
		s.movePeriod = 45
	}

	for day := 0; day < cfg.Days; day++ {
		dayStart := Epoch + int64(day)*86400
		weekday := ((day % 7) != 5) && ((day % 7) != 6)

		// Morning at home.
		t := dayStart + hourToSec(6.8+rng.Float64())
		s.dwell(co.home, dayStart+hourToSec(6.2), t)

		if !weekday {
			// Weekends off: stay around home.
			s.dwell(co.home, t, dayStart+hourToSec(22))
			continue
		}

		cur := co.home
		for _, stop := range co.stops {
			s.travel(cur, stop, t, co.speed)
			t += travelSec(cur, stop, co.speed)
			cur = stop
			// Short delivery stop: below the POI dwell threshold but
			// enough records to weigh the corridor's cells.
			stopDur := int64(600 + rng.Intn(1200))
			s.dwell(cur, t, t+stopDur)
			t += stopDur
		}
		s.travel(cur, co.home, t, co.speed)
		t += travelSec(cur, co.home, co.speed)
		s.dwell(co.home, t, dayStart+hourToSec(22.5))
	}
	return trace.New(user, s.records)
}
