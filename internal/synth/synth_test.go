package synth

import (
	"testing"
	"time"

	"mood/internal/geo"
	"mood/internal/poi"
)

func tinyPhoneConfig() Config {
	cfg := MDCLike(ScaleTiny, 1)
	cfg.NumUsers = 6
	cfg.Days = 6
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(tinyPhoneConfig())
	b := MustGenerate(tinyPhoneConfig())
	if a.NumRecords() != b.NumRecords() || a.NumUsers() != b.NumUsers() {
		t.Fatal("same seed, different dataset size")
	}
	for i := range a.Traces {
		at, bt := a.Traces[i], b.Traces[i]
		if at.User != bt.User || at.Len() != bt.Len() {
			t.Fatalf("trace %d differs structurally", i)
		}
		for j := range at.Records {
			if at.Records[j] != bt.Records[j] {
				t.Fatalf("trace %d record %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cfg1 := tinyPhoneConfig()
	cfg2 := tinyPhoneConfig()
	cfg2.Seed = 999
	a := MustGenerate(cfg1)
	b := MustGenerate(cfg2)
	if a.Traces[0].Records[0] == b.Traces[0].Records[0] {
		t.Fatal("different seeds produced identical first records")
	}
}

func TestGeneratedDatasetIsValid(t *testing.T) {
	d := MustGenerate(tinyPhoneConfig())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 6 {
		t.Fatalf("users = %d", d.NumUsers())
	}
	for _, tr := range d.Traces {
		if tr.Len() < 100 {
			t.Fatalf("user %s has only %d records", tr.User, tr.Len())
		}
	}
}

func TestPhoneUserStaysInCity(t *testing.T) {
	cfg := tinyPhoneConfig()
	d := MustGenerate(cfg)
	for _, tr := range d.Traces {
		for _, r := range tr.Records {
			if dd := geo.Haversine(cfg.Center, r.Point()); dd > cfg.Radius*1.5 {
				t.Fatalf("user %s strayed %v m from the city center", tr.User, dd)
			}
		}
	}
}

func TestPhoneUserHasHomePOI(t *testing.T) {
	cfg := tinyPhoneConfig()
	d := MustGenerate(cfg)
	e := poi.NewExtractor()
	withPOI := 0
	for _, tr := range d.Traces {
		if len(e.Extract(tr)) > 0 {
			withPOI++
		}
	}
	if withPOI < d.NumUsers() {
		t.Fatalf("only %d/%d users have POIs", withPOI, d.NumUsers())
	}
}

func TestTraceSpansRequestedDays(t *testing.T) {
	cfg := tinyPhoneConfig()
	d := MustGenerate(cfg)
	for _, tr := range d.Traces {
		days := tr.Duration().Hours() / 24
		if days < float64(cfg.Days)-1.5 || days > float64(cfg.Days)+0.5 {
			t.Fatalf("user %s spans %.1f days, want ~%d", tr.User, days, cfg.Days)
		}
	}
}

func TestTaxiGeneration(t *testing.T) {
	cfg := CabspottingLike(ScaleTiny, 3)
	cfg.NumUsers = 5
	cfg.Days = 4
	d := MustGenerate(cfg)
	if d.NumUsers() != 5 {
		t.Fatalf("users = %d", d.NumUsers())
	}
	for _, tr := range d.Traces {
		if tr.Len() < 200 {
			t.Fatalf("taxi %s has only %d records", tr.User, tr.Len())
		}
		// Taxis cover ground: path length far exceeds a commuter's.
		if tr.PathLength() < 50000 {
			t.Fatalf("taxi %s travelled only %.0f m", tr.User, tr.PathLength())
		}
	}
}

func TestTaxiHasFewDwellPOIs(t *testing.T) {
	// Cabs never dwell an hour in one 200 m spot mid-shift; POI profiles
	// should be thin or empty, unlike commuters.
	cfg := CabspottingLike(ScaleTiny, 3)
	cfg.NumUsers = 4
	cfg.Days = 4
	d := MustGenerate(cfg)
	e := poi.NewExtractor()
	for _, tr := range d.Traces {
		if n := len(e.Extract(tr)); n > 3 {
			t.Fatalf("taxi %s has %d dwell POIs, want <= 3", tr.User, n)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := tinyPhoneConfig()
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no name", func(c *Config) { c.Name = "" }},
		{"no users", func(c *Config) { c.NumUsers = 0 }},
		{"no days", func(c *Config) { c.Days = 0 }},
		{"no radius", func(c *Config) { c.Radius = 0 }},
		{"bad taxi fraction", func(c *Config) { c.TaxiFraction = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestPresets(t *testing.T) {
	ps := Presets(ScaleBench, 1)
	if len(ps) != 4 {
		t.Fatalf("presets = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		names[p.Name] = true
	}
	for _, want := range []string{"mdc", "privamov", "geolife", "cabspotting"} {
		if !names[want] {
			t.Fatalf("missing preset %q", want)
		}
	}
}

func TestPaperScaleUserCounts(t *testing.T) {
	tests := []struct {
		cfg  Config
		want int
	}{
		{MDCLike(ScalePaper, 1), 141},
		{PrivamovLike(ScalePaper, 1), 41},
		{GeolifeLike(ScalePaper, 1), 41},
		{CabspottingLike(ScalePaper, 1), 531},
	}
	for _, tt := range tests {
		if tt.cfg.NumUsers != tt.want {
			t.Errorf("%s paper users = %d, want %d", tt.cfg.Name, tt.cfg.NumUsers, tt.want)
		}
		if tt.cfg.Days != 30 {
			t.Errorf("%s paper days = %d, want 30", tt.cfg.Name, tt.cfg.Days)
		}
	}
}

func TestPresetByName(t *testing.T) {
	cfg, err := PresetByName("geolife", ScaleTiny, 7)
	if err != nil || cfg.Name != "geolife" {
		t.Fatalf("PresetByName: %v, %v", cfg.Name, err)
	}
	if _, err := PresetByName("nope", ScaleTiny, 7); err == nil {
		t.Fatal("unknown preset must error")
	}
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"tiny", "bench", "paper"} {
		sc, err := ParseScale(s)
		if err != nil {
			t.Fatal(err)
		}
		if sc.String() != s {
			t.Fatalf("round trip %q -> %q", s, sc.String())
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale must error")
	}
}

func TestSamplerMonotonicTimestamps(t *testing.T) {
	d := MustGenerate(tinyPhoneConfig())
	for _, tr := range d.Traces {
		for i := 1; i < tr.Len(); i++ {
			if tr.Records[i].TS < tr.Records[i-1].TS {
				t.Fatalf("user %s has non-monotonic timestamps", tr.User)
			}
		}
	}
}

func TestDriftChangesSecondHalf(t *testing.T) {
	// With DriftFraction 1, every user's dominant POI should move
	// between the first and second half.
	cfg := tinyPhoneConfig()
	cfg.DriftFraction = 1
	cfg.Name = "drift"
	d := MustGenerate(cfg)
	e := poi.NewExtractor()
	moved := 0
	for _, tr := range d.Traces {
		mid := tr.Start() + (tr.End()-tr.Start())/2
		first, second := tr.SplitAt(mid)
		p1 := e.Extract(first)
		p2 := e.Extract(second)
		if len(p1) == 0 || len(p2) == 0 {
			continue
		}
		if geo.FastDistance(p1[0].Center, p2[0].Center) > 500 {
			moved++
		}
	}
	if moved < d.NumUsers()/2 {
		t.Fatalf("only %d/%d drifting users moved their main POI", moved, d.NumUsers())
	}
}

func TestSampleRatesAffectDensity(t *testing.T) {
	sparse := tinyPhoneConfig()
	dense := tinyPhoneConfig()
	dense.DwellSample = time.Minute
	dense.MoveSample = 30 * time.Second
	ds := MustGenerate(sparse)
	dd := MustGenerate(dense)
	if dd.NumRecords() <= ds.NumRecords() {
		t.Fatalf("denser sampling produced fewer records: %d <= %d",
			dd.NumRecords(), ds.NumRecords())
	}
}
