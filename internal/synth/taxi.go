package synth

import (
	"math"

	"mood/internal/geo"
	"mood/internal/mathx"
	"mood/internal/trace"
)

// taxi is the behavioural program of one cab. Unlike phone users, cabs
// have no private anchor places: their traces are sequences of fares.
// What distinguishes one cab from another is only how tightly its fares
// concentrate around a preferred operating zone — a small zoneSigma cab
// is re-identifiable, a city-wide cab is naturally protected. This is
// the Cabspotting property the paper leans on in Figure 6d/7d.
type taxi struct {
	zone      geo.Point // preferred operating zone center
	zoneSigma float64   // fare spread around the zone
	depot     geo.Point // shared parking depot, dwelled pre/post shift
	shiftHour float64   // shift start hour
	shiftLen  float64   // shift length in hours
	speed     float64   // driving speed m/s
}

func newTaxi(cfg Config, c *city, rng *mathx.Rand) taxi {
	smin, smax := cfg.ZoneSigmaMin, cfg.ZoneSigmaMax
	if smin <= 0 {
		smin = 800
	}
	if smax <= smin {
		smax = cfg.Radius
	}
	// Depots are shared infrastructure (the city's venue set): many
	// cabs park at the same lot, so depot POIs alone cannot separate
	// them — only zone tightness can.
	// The square root skews sigmas toward the large end: most cabs roam
	// widely (naturally protected), a minority works a tight
	// neighbourhood (re-identifiable) — the Cabspotting balance of
	// Figure 6d/7d.
	return taxi{
		zone:      randInDisc(rng, cfg.Center, cfg.Radius*0.7),
		zoneSigma: smin + math.Sqrt(rng.Float64())*(smax-smin),
		depot:     mathx.Choice(rng, c.venues),
		shiftHour: 5 + rng.Float64()*12,
		shiftLen:  8 + rng.Float64()*6,
		speed:     7 + rng.Float64()*6,
	}
}

// pickup draws a fare origin: mostly around the cab's preferred zone,
// sometimes anywhere in the city (dispatch calls).
func (tx taxi) pickup(cfg Config, rng *mathx.Rand) geo.Point {
	if rng.Float64() < 0.25 {
		return randInDisc(rng, cfg.Center, cfg.Radius)
	}
	return randNear(rng, tx.zone, tx.zoneSigma)
}

// dropoff draws a fare destination: biased toward downtown, otherwise
// uniform city-wide.
func (tx taxi) dropoff(cfg Config, c *city, rng *mathx.Rand) geo.Point {
	if rng.Float64() < 0.4 {
		return randInDisc(rng, c.downtown, cfg.Radius*0.35)
	}
	return randInDisc(rng, cfg.Center, cfg.Radius)
}

// simulateTaxi runs one cab for the whole period.
func simulateTaxi(cfg Config, c *city, user string, rng *mathx.Rand) trace.Trace {
	tx := newTaxi(cfg, c, rng)
	s := newSampler(cfg, rng)
	// Cabs ping more often than phones while driving.
	if s.movePeriod > 90 {
		s.movePeriod = 90
	}

	for day := 0; day < cfg.Days; day++ {
		dayStart := Epoch + int64(day)*86400
		t := dayStart + hourToSec(tx.shiftHour+rng.NormFloat64()*0.5)
		shiftEnd := t + hourToSec(tx.shiftLen)

		// Pre-shift dwell at the depot (cabs are parked and pinging),
		// long enough to register as a POI for profile-based attacks.
		s.dwell(tx.depot, t-hourToSec(1.2), t)
		cur := tx.depot

		for t < shiftEnd {
			// Wait for a fare at the current stand.
			wait := int64(180 + rng.Intn(900))
			s.dwell(cur, t, t+wait)
			t += wait

			pick := tx.pickup(cfg, rng)
			s.travel(cur, pick, t, tx.speed)
			t += travelSec(cur, pick, tx.speed)

			drop := tx.dropoff(cfg, c, rng)
			s.travel(pick, drop, t, tx.speed)
			t += travelSec(pick, drop, tx.speed)
			cur = drop
		}

		// Return to the depot and park.
		s.travel(cur, tx.depot, t, tx.speed)
		t += travelSec(cur, tx.depot, tx.speed)
		s.dwell(tx.depot, t, t+hourToSec(1.2))
	}
	return trace.New(user, s.records)
}
