package synth

import (
	"time"

	"mood/internal/geo"
	"mood/internal/mathx"
	"mood/internal/trace"
)

// persona is the behavioural program of one phone user.
type persona struct {
	home     geo.Point
	work     geo.Point
	hasWork  bool
	leisure  []geo.Point // personal subset of city venues
	workHour float64     // nominal start of the work day
	workLen  float64     // hours at work
	pOuting  float64     // probability of an evening outing
	speed    float64     // travel speed m/s
	drifts   bool        // habits change at mid-period
}

func newPersona(cfg Config, c *city, rng *mathx.Rand) persona {
	p := persona{
		home:     randNear(rng, mathx.Choice(rng, c.homeClusters), cfg.ClusterRadius),
		workHour: 8 + rng.Float64()*2.5,
		workLen:  7 + rng.Float64()*3,
		pOuting:  0.25 + rng.Float64()*0.5,
		speed:    6 + rng.Float64()*8, // mixed walk/transit/car
		drifts:   rng.Float64() < cfg.DriftFraction,
	}
	// ~85 % of users have a fixed work/study place.
	if rng.Float64() < 0.85 {
		p.hasWork = true
		p.work = randNear(rng, mathx.Choice(rng, c.workClusters), cfg.ClusterRadius)
	}
	nLeisure := 2 + rng.Intn(3)
	for i := 0; i < nLeisure; i++ {
		p.leisure = append(p.leisure, mathx.Choice(rng, c.venues))
	}
	return p
}

// redraw rebuilds the persona's anchors for the drifted second half:
// the user moves house and changes workplace/leisure set.
func (p *persona) redraw(cfg Config, c *city, rng *mathx.Rand) {
	p.home = randNear(rng, mathx.Choice(rng, c.homeClusters), cfg.ClusterRadius)
	if p.hasWork {
		p.work = randNear(rng, mathx.Choice(rng, c.workClusters), cfg.ClusterRadius)
	}
	for i := range p.leisure {
		p.leisure[i] = mathx.Choice(rng, c.venues)
	}
}

// simulatePhoneUser runs the persona day by day and samples its position.
func simulatePhoneUser(cfg Config, c *city, user string, rng *mathx.Rand) trace.Trace {
	p := newPersona(cfg, c, rng)
	s := newSampler(cfg, rng)

	half := cfg.Days / 2
	for day := 0; day < cfg.Days; day++ {
		if p.drifts && day == half {
			p.redraw(cfg, c, rng)
		}
		simulateDay(cfg, &p, s, rng, day)
	}
	return trace.New(user, s.records)
}

// simulateDay appends one day of movement to the sampler.
func simulateDay(cfg Config, p *persona, s *sampler, rng *mathx.Rand, day int) {
	dayStart := Epoch + int64(day)*86400
	weekday := ((day % 7) != 5) && ((day % 7) != 6) // Epoch is a Tuesday; close enough for scheduling

	// Morning at home. Phones sample sparsely overnight; we start the
	// sampled day at ~6:30.
	wake := 6.3 + rng.Float64()*1.2
	cur := p.home
	s.dwell(cur, dayStart+hourToSec(wake-0.6), dayStart+hourToSec(wake))

	if p.hasWork && weekday {
		start := p.workHour + rng.NormFloat64()*0.3
		end := start + p.workLen + rng.NormFloat64()*0.5
		s.travel(cur, p.work, dayStart+hourToSec(start)-travelSec(cur, p.work, p.speed), p.speed)
		cur = p.work
		s.dwell(cur, dayStart+hourToSec(start), dayStart+hourToSec(end))

		// Lunch outing near work on some days.
		if rng.Float64() < 0.3 {
			lunch := geo.Offset(p.work, rng.NormFloat64()*300, rng.NormFloat64()*300)
			t0 := dayStart + hourToSec(start+3.5)
			s.travel(cur, lunch, t0, 1.4)
			s.dwell(lunch, t0+travelSec(cur, lunch, 1.4), t0+travelSec(cur, lunch, 1.4)+2400)
			s.travel(lunch, p.work, t0+travelSec(cur, lunch, 1.4)+2400, 1.4)
		}

		// Evening: outing or straight home.
		evening := dayStart + hourToSec(end)
		if len(p.leisure) > 0 && rng.Float64() < p.pOuting {
			venue := mathx.Choice(rng, p.leisure)
			s.travel(cur, venue, evening, p.speed)
			arr := evening + travelSec(cur, venue, p.speed)
			dur := int64(3600 + rng.Intn(7200))
			s.dwell(venue, arr, arr+dur)
			s.travel(venue, p.home, arr+dur, p.speed)
			cur = p.home
			s.dwell(cur, arr+dur+travelSec(venue, p.home, p.speed), dayStart+hourToSec(23.2))
		} else {
			s.travel(cur, p.home, evening, p.speed)
			cur = p.home
			s.dwell(cur, evening+travelSec(p.work, p.home, p.speed), dayStart+hourToSec(23.2))
		}
		return
	}

	// Weekend / non-worker day: late start, one or two outings.
	t := dayStart + hourToSec(9.5+rng.Float64()*2)
	s.dwell(cur, dayStart+hourToSec(8), t)
	outings := 1 + rng.Intn(2)
	for i := 0; i < outings && len(p.leisure) > 0; i++ {
		venue := mathx.Choice(rng, p.leisure)
		s.travel(cur, venue, t, p.speed)
		t += travelSec(cur, venue, p.speed)
		cur = venue
		dur := int64(3600 + rng.Intn(10800))
		s.dwell(cur, t, t+dur)
		t += dur
	}
	s.travel(cur, p.home, t, p.speed)
	t += travelSec(cur, p.home, p.speed)
	s.dwell(p.home, t, dayStart+hourToSec(23.5))
}

func hourToSec(h float64) int64 { return int64(h * 3600) }

func travelSec(from, to geo.Point, speed float64) int64 {
	if speed <= 0 {
		speed = 1
	}
	return int64(geo.FastDistance(from, to)/speed) + 1
}

// sampler turns dwell/travel segments into GPS records with noise.
type sampler struct {
	records     []trace.Record
	dwellPeriod int64
	movePeriod  int64
	noise       float64
	rng         *mathx.Rand
	lastTS      int64
}

func newSampler(cfg Config, rng *mathx.Rand) *sampler {
	dp := int64(cfg.DwellSample / time.Second)
	if dp <= 0 {
		dp = 600
	}
	mp := int64(cfg.MoveSample / time.Second)
	if mp <= 0 {
		mp = 120
	}
	return &sampler{dwellPeriod: dp, movePeriod: mp, noise: cfg.GPSNoise, rng: rng}
}

func (s *sampler) emit(p geo.Point, ts int64) {
	if ts <= s.lastTS {
		ts = s.lastTS + 1
	}
	s.lastTS = ts
	if s.noise > 0 {
		p = geo.Offset(p, s.rng.NormFloat64()*s.noise, s.rng.NormFloat64()*s.noise)
	}
	s.records = append(s.records, trace.At(p, ts))
}

// dwell samples a stay at p during [from, to].
func (s *sampler) dwell(p geo.Point, from, to int64) {
	if to <= from {
		return
	}
	for ts := from; ts <= to; ts += s.dwellPeriod {
		s.emit(p, ts)
	}
}

// travel samples a straight-line movement from a to b starting at t0.
func (s *sampler) travel(a, b geo.Point, t0 int64, speed float64) {
	d := geo.FastDistance(a, b)
	if d < 1 {
		return
	}
	dur := travelSec(a, b, speed)
	for ts := int64(0); ts <= dur; ts += s.movePeriod {
		f := float64(ts) / float64(dur)
		s.emit(geo.Interpolate(a, b, f), t0+ts)
	}
}
