package synth

import (
	"fmt"
	"time"

	"mood/internal/geo"
)

// Scale selects how large the generated datasets are. The experiment
// harness and the benchmarks use ScaleBench; ScalePaper reproduces the
// user counts of the paper's Table 1.
type Scale int

const (
	// ScaleTiny is for unit tests (a handful of users, few days).
	ScaleTiny Scale = iota + 1
	// ScaleBench is CI-sized: enough users for the figures' shape.
	ScaleBench
	// ScalePaper matches Table 1 user counts (slow: minutes per run).
	ScalePaper
)

// ParseScale converts a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return ScaleTiny, nil
	case "bench":
		return ScaleBench, nil
	case "paper":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("synth: unknown scale %q (want tiny, bench or paper)", s)
	}
}

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleBench:
		return "bench"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

func (s Scale) users(paper int) int {
	switch s {
	case ScaleTiny:
		n := paper / 12
		if n < 6 {
			n = 6
		}
		return n
	case ScaleBench:
		n := paper / 5
		if n < 10 {
			n = 10
		}
		return n
	default:
		return paper
	}
}

func (s Scale) days() int {
	switch s {
	case ScaleTiny:
		return 8
	case ScaleBench:
		return 12
	default:
		return 30
	}
}

// City anchor points of the four datasets (Table 1).
var (
	geneva       = geo.Point{Lat: 46.2044, Lon: 6.1432}
	lyonCity     = geo.Point{Lat: 45.7640, Lon: 4.8357}
	beijing      = geo.Point{Lat: 39.9042, Lon: 116.4074}
	sanFrancisco = geo.Point{Lat: 37.7749, Lon: -122.4194}
)

// MDCLike models the MDC dataset: 141 phone users around Geneva. A
// compact city with shared residential districts: many users overlap in
// heatmap cells, and a noticeable fraction changes habits mid-period.
func MDCLike(scale Scale, seed uint64) Config {
	return Config{
		Name:            "mdc",
		Center:          geneva,
		Radius:          9000,
		NumUsers:        scale.users(141),
		Days:            scale.days(),
		Seed:            seed,
		HomeClusters:    8,
		WorkClusters:    4,
		ClusterRadius:   350,
		DriftFraction:   0.22,
		CourierFraction: 0.08,
		DwellSample:     10 * time.Minute,
		MoveSample:      2 * time.Minute,
		GPSNoise:        12,
	}
}

// PrivamovLike models the Privamov campaign: 41 GPS-dense users in Lyon
// with highly distinctive mobility (few are naturally protected).
func PrivamovLike(scale Scale, seed uint64) Config {
	return Config{
		Name:            "privamov",
		Center:          lyonCity,
		Radius:          8000,
		NumUsers:        scale.users(41),
		Days:            scale.days(),
		Seed:            seed,
		HomeClusters:    12,
		WorkClusters:    6,
		ClusterRadius:   250,
		DriftFraction:   0.08,
		CourierFraction: 0.1,
		DwellSample:     5 * time.Minute,
		MoveSample:      time.Minute,
		GPSNoise:        8,
	}
}

// GeolifeLike models the Geolife slice the paper uses: 41 users in a
// much larger city (Beijing) with noisier positioning and wider travel.
func GeolifeLike(scale Scale, seed uint64) Config {
	return Config{
		Name:            "geolife",
		Center:          beijing,
		Radius:          18000,
		NumUsers:        scale.users(41),
		Days:            scale.days(),
		Seed:            seed,
		HomeClusters:    10,
		WorkClusters:    5,
		ClusterRadius:   400,
		DriftFraction:   0.2,
		CourierFraction: 0.08,
		DwellSample:     8 * time.Minute,
		MoveSample:      90 * time.Second,
		GPSNoise:        25,
	}
}

// CabspottingLike models the San Francisco taxi fleet: 531 cabs whose
// traces are fare sequences. Zone sigmas span tight neighbourhood cabs
// (re-identifiable) to city-wide roamers (naturally protected).
func CabspottingLike(scale Scale, seed uint64) Config {
	return Config{
		Name:         "cabspotting",
		Center:       sanFrancisco,
		Radius:       10000,
		NumUsers:     scale.users(531),
		Days:         scale.days(),
		Seed:         seed,
		TaxiFraction: 1,
		ZoneSigmaMin: 700,
		ZoneSigmaMax: 9000,
		DwellSample:  5 * time.Minute,
		MoveSample:   time.Minute,
		GPSNoise:     15,
	}
}

// Presets returns the four dataset configs in the paper's Table 1 order.
func Presets(scale Scale, seed uint64) []Config {
	return []Config{
		CabspottingLike(scale, seed),
		GeolifeLike(scale, seed),
		MDCLike(scale, seed),
		PrivamovLike(scale, seed),
	}
}

// PresetByName returns the preset with the given dataset name.
func PresetByName(name string, scale Scale, seed uint64) (Config, error) {
	for _, cfg := range Presets(scale, seed) {
		if cfg.Name == name {
			return cfg, nil
		}
	}
	return Config{}, fmt.Errorf("synth: unknown dataset %q (want cabspotting, geolife, mdc or privamov)", name)
}
