// Package heatmap aggregates mobility traces into spatial histograms
// over a fixed grid — the mobility-profile model of the AP-attack [22]
// and the substrate of the HMC protection mechanism [23].
//
// A heatmap counts the records of a trace per grid cell; normalising the
// counts yields a probability distribution over cells that can be
// compared with information-theoretic divergences.
package heatmap

import (
	"sort"

	"mood/internal/geo"
	"mood/internal/mathx"
	"mood/internal/trace"
)

// DefaultCellSize is the paper's AP-attack / HMC cell size (800 m).
const DefaultCellSize = 800.0

// Heatmap is a sparse record-count histogram over grid cells.
type Heatmap struct {
	grid   *geo.Grid
	counts map[geo.Cell]float64
	total  float64
}

// New returns an empty heatmap over the given grid.
func New(grid *geo.Grid) *Heatmap {
	return &Heatmap{grid: grid, counts: make(map[geo.Cell]float64)}
}

// FromTrace builds the heatmap of t on grid.
func FromTrace(grid *geo.Grid, t trace.Trace) *Heatmap {
	h := New(grid)
	for _, r := range t.Records {
		h.Add(r.Point(), 1)
	}
	return h
}

// Grid returns the underlying grid.
func (h *Heatmap) Grid() *geo.Grid { return h.grid }

// Add accumulates weight w at point p.
func (h *Heatmap) Add(p geo.Point, w float64) {
	h.counts[h.grid.CellOf(p)] += w
	h.total += w
}

// AddCell accumulates weight w in cell c directly.
func (h *Heatmap) AddCell(c geo.Cell, w float64) {
	h.counts[c] += w
	h.total += w
}

// Total returns the accumulated weight.
func (h *Heatmap) Total() float64 { return h.total }

// Cells returns the number of non-empty cells.
func (h *Heatmap) Cells() int { return len(h.counts) }

// Count returns the weight in cell c.
func (h *Heatmap) Count(c geo.Cell) float64 { return h.counts[c] }

// Prob returns the normalised probability mass of cell c.
func (h *Heatmap) Prob(c geo.Cell) float64 {
	if h.total == 0 {
		return 0
	}
	return h.counts[c] / h.total
}

// CellWeight pairs a cell with its weight; TopCells returns these.
type CellWeight struct {
	Cell   geo.Cell
	Weight float64
}

// TopCells returns up to k cells by descending weight (all cells when
// k <= 0), with deterministic tie-breaking on cell coordinates.
func (h *Heatmap) TopCells(k int) []CellWeight {
	out := make([]CellWeight, 0, len(h.counts))
	for c, w := range h.counts {
		out = append(out, CellWeight{Cell: c, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].Cell.X != out[j].Cell.X {
			return out[i].Cell.X < out[j].Cell.X
		}
		return out[i].Cell.Y < out[j].Cell.Y
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Topsoe returns the Topsoe divergence between the normalised
// distributions of h and o. The comparison aligns the sparse supports of
// both maps; cells absent from one side contribute as zero-probability
// mass, which Topsoe handles with finite values. Both heatmaps must use
// grids of the same geometry for the result to be meaningful.
//
// The union support is walked in sorted cell order so the float
// summation order — and therefore the exact result — is reproducible;
// HMC's target selection and the AP-attack's argmin depend on that.
func (h *Heatmap) Topsoe(o *Heatmap) float64 {
	p, q := Distributions(h, o)
	return mathx.Topsoe(p, q)
}

// Distributions materialises the aligned probability vectors of h and o
// over their union support, ordered deterministically. Used by tests and
// by callers that need the raw vectors.
func Distributions(h, o *Heatmap) (p, q []float64) {
	cells := make([]geo.Cell, 0, len(h.counts)+len(o.counts))
	seen := make(map[geo.Cell]struct{}, len(h.counts)+len(o.counts))
	collect := func(m map[geo.Cell]float64) {
		for c := range m {
			if _, ok := seen[c]; !ok {
				seen[c] = struct{}{}
				cells = append(cells, c)
			}
		}
	}
	collect(h.counts)
	collect(o.counts)
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].X != cells[j].X {
			return cells[i].X < cells[j].X
		}
		return cells[i].Y < cells[j].Y
	})
	p = make([]float64, len(cells))
	q = make([]float64, len(cells))
	for i, c := range cells {
		p[i] = h.Prob(c)
		q[i] = o.Prob(c)
	}
	return p, q
}

// Clone returns a deep copy of the heatmap.
func (h *Heatmap) Clone() *Heatmap {
	c := &Heatmap{grid: h.grid, counts: make(map[geo.Cell]float64, len(h.counts)), total: h.total}
	for k, v := range h.counts {
		c.counts[k] = v
	}
	return c
}
