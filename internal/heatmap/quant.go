package heatmap

import (
	"math"

	"mood/internal/geo"
)

// This file is the float32 half of the batch identification kernels:
// a quantized companion form of Frozen plus approximate divergence
// walks used as a *pruning pass* by the profile-major batch scans in
// internal/attack. The contract is asymmetric by design — the
// quantized value is only ever trusted as a lower bound (after
// subtracting a generous certified slack), and every verdict still
// comes from the exact float64 kernels in frozen.go, so batch verdicts
// stay bit-identical to the scalar path while most losing profiles are
// rejected at a fraction of the exact walk's cost.

// Quant is the float32-quantized form of a Frozen heatmap: the same
// sorted cells, the normalized probabilities rounded to float32, and
// each probability's natural log precomputed at quantization time. A
// quantized Topsoe walk therefore costs one fastLog32 per shared cell
// and no divisions at all, where the exact kernel pays two divisions
// and up to two math.Log calls per cell.
//
// A Quant is immutable and safe for concurrent use.
type Quant struct {
	cells []geo.Cell // shared with the source Frozen (sorted X, then Y)
	probs []float32  // normalized cell probabilities (weight/total)
	logs  []float32  // ln(probs[i]), precomputed; 0 where probs[i] == 0
}

// Quantize builds the float32 companion of f. An empty heatmap
// quantizes to all-zero mass, matching prob()'s view of a zero total.
func (f *Frozen) Quantize() *Quant {
	q := &Quant{
		cells: f.cells,
		probs: make([]float32, len(f.cells)),
		logs:  make([]float32, len(f.cells)),
	}
	for i, w := range f.weights {
		p := prob(w, f.total)
		q.probs[i] = float32(p)
		if p > 0 {
			// The stored log uses the same fastLog32 the merge walk
			// applies to midpoints, so a shared cell with equal
			// probabilities contributes exactly zero — the two
			// approximation errors cancel instead of accumulating.
			q.logs[i] = fastLog32(q.probs[i])
		}
	}
	return q
}

// QuantizeAll quantizes a slice of frozen heatmaps (one profile's or
// one anonymous trace's time slices).
func QuantizeAll(fs []*Frozen) []*Quant {
	out := make([]*Quant, len(fs))
	for i, f := range fs {
		out[i] = f.Quantize()
	}
	return out
}

// Cells returns the support size.
func (q *Quant) Cells() int { return len(q.cells) }

// MemBytes estimates the quantized footprint (cells + probs + logs),
// used by the batch scans to size cache-resident profile blocks.
func (q *Quant) MemBytes() int { return len(q.cells) * 16 }

// ln2f is ln 2 rounded to float32 — the exact Topsoe contribution of a
// cell present on only one side (p·log(p/(p/2)) = p·ln 2).
const ln2f = float32(0.69314718055994530942)

// fastLog32 approximates the natural log of a positive, finite, normal
// float32: the exponent is peeled from the bit pattern and the
// mantissa's log comes from a 4-term atanh series — for m in [1,2),
// ln(m) = 2·atanh(t) with t = (m−1)/(m+1) ≤ 1/3, so truncating after
// t⁷/7 leaves under 1.2e-5 absolute error; float32 rounding adds a few
// ulp more. QuantTopsoeSlack budgets two orders of magnitude above
// that per unit of probability mass. Inputs are cell probabilities
// (≥ 1/total, far above the subnormal range).
func fastLog32(x float32) float32 {
	bits := math.Float32bits(x)
	e := int32(bits>>23) - 127
	m := math.Float32frombits(bits&0x007fffff | 0x3f800000) // mantissa in [1,2)
	t := (m - 1) / (m + 1)
	t2 := t * t
	l := 2 * t * (1 + t2*(1.0/3+t2*(1.0/5+t2*(1.0/7))))
	return l + float32(e)*ln2f
}

// TopsoeQuantBounded accumulates the quantized Topsoe divergence over
// the merged supports of q and o, returning as soon as the partial sum
// reaches bound. Every term is non-negative, so the sum is monotone:
// a return ≥ bound certifies the full approximation would reach bound
// too, and a return below it is the completed approximation — within
// QuantTopsoeSlack of the exact Topsoe divergence either way, because
// an early-exited partial only ever under-states the total.
func (q *Quant) TopsoeQuantBounded(o *Quant, bound float32) float32 {
	var d float32
	qc, oc := q.cells, o.cells
	i, j := 0, 0
	for i < len(qc) && j < len(oc) {
		a, b := qc[i], oc[j]
		switch {
		case a == b:
			p, pp := q.probs[i], o.probs[j]
			if p > 0 || pp > 0 {
				lm := fastLog32((p + pp) / 2)
				if p > 0 {
					d += p * (q.logs[i] - lm)
				}
				if pp > 0 {
					d += pp * (o.logs[j] - lm)
				}
			}
			i++
			j++
		case cellLess(a, b):
			d += q.probs[i] * ln2f
			i++
		default:
			d += o.probs[j] * ln2f
			j++
		}
		if d >= bound {
			return d
		}
	}
	for ; i < len(qc); i++ {
		d += q.probs[i] * ln2f
		if d >= bound {
			return d
		}
	}
	for ; j < len(oc); j++ {
		d += o.probs[j] * ln2f
		if d >= bound {
			return d
		}
	}
	return d
}

// L1QuantBounded is the quantized L1 walk; see TopsoeQuantBounded for
// the bound semantics (L1 terms are likewise non-negative).
func (q *Quant) L1QuantBounded(o *Quant, bound float32) float32 {
	var d float32
	qc, oc := q.cells, o.cells
	i, j := 0, 0
	for i < len(qc) && j < len(oc) {
		a, b := qc[i], oc[j]
		switch {
		case a == b:
			diff := q.probs[i] - o.probs[j]
			if diff < 0 {
				diff = -diff
			}
			d += diff
			i++
			j++
		case cellLess(a, b):
			d += q.probs[i]
			i++
		default:
			d += o.probs[j]
			j++
		}
		if d >= bound {
			return d
		}
	}
	for ; i < len(qc); i++ {
		d += q.probs[i]
		if d >= bound {
			return d
		}
	}
	for ; j < len(oc); j++ {
		d += o.probs[j]
		if d >= bound {
			return d
		}
	}
	return d
}

// QuantTopsoeSlack bounds |completed TopsoeQuantBounded − exact Topsoe|
// for a merged support of n cells. Three error sources, each budgeted
// with roughly two orders of magnitude to spare: float32 input rounding
// (≤ 2⁻²³ relative per probability), the fastLog32 approximation
// (≤ 2e-5 absolute per log, weighted by total probability mass ≤ 2),
// and float32 accumulation of n non-negative terms (≤ n ulps of a sum
// ≤ 2·ln 2). Pruning with this slack trades a little speed for zero
// risk: a profile is only skipped when its certified lower bound
// already loses, and TestQuantSlackSound fails if the observed error on
// random and adversarial pairs ever exceeds half this budget.
func QuantTopsoeSlack(n int) float64 { return 1e-4 + 2e-7*float64(n) }

// QuantL1Slack is the L1 analogue (no logs: only input rounding and
// accumulation error).
func QuantL1Slack(n int) float64 { return 1e-5 + 2e-7*float64(n) }
