package heatmap

import (
	"math"
	"sort"

	"mood/internal/geo"
	"mood/internal/mathx"
	"mood/internal/trace"
)

// Frozen is an immutable snapshot of a Heatmap: the non-empty cells
// sorted by (X, Y) with their weights and the precomputed total. It is
// the comparison-ready form of a mobility profile — divergences between
// two Frozen heatmaps are merge walks over the two sorted supports and
// allocate nothing, where the map-based Heatmap path rebuilds and sorts
// a union-support map per comparison.
//
// The walk visits the union support in exactly the sorted cell order of
// Distributions and folds probabilities through the same mathx scalar
// kernels, so Frozen divergences are bit-identical to the dense path,
// not merely close — the AP-attack argmin and HMC target selection
// depend on that.
//
// A Frozen is safe for concurrent use.
type Frozen struct {
	grid    *geo.Grid
	cells   []geo.Cell // sorted by (X, then Y)
	weights []float64  // aligned with cells
	total   float64
}

// Freeze snapshots h into its sorted-sparse comparison form. Later
// mutations of h do not affect the snapshot.
func (h *Heatmap) Freeze() *Frozen {
	f := &Frozen{
		grid:    h.grid,
		cells:   make([]geo.Cell, 0, len(h.counts)),
		weights: make([]float64, len(h.counts)),
		total:   h.total,
	}
	for c := range h.counts {
		f.cells = append(f.cells, c)
	}
	sort.Slice(f.cells, func(i, j int) bool { return cellLess(f.cells[i], f.cells[j]) })
	for i, c := range f.cells {
		f.weights[i] = h.counts[c]
	}
	return f
}

// FrozenFromTrace builds the frozen heatmap of t on grid.
func FrozenFromTrace(grid *geo.Grid, t trace.Trace) *Frozen {
	return FromTrace(grid, t).Freeze()
}

// cellLess is the canonical cell order shared by Distributions and the
// merge walks: ascending X, then ascending Y.
func cellLess(a, b geo.Cell) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// Grid returns the underlying grid.
func (f *Frozen) Grid() *geo.Grid { return f.grid }

// Total returns the accumulated weight.
func (f *Frozen) Total() float64 { return f.total }

// Cells returns the number of non-empty cells.
func (f *Frozen) Cells() int { return len(f.cells) }

// prob normalises a cell weight against a total, treating an empty
// heatmap as all-zero mass exactly like Heatmap.Prob.
func prob(w, total float64) float64 {
	if total == 0 {
		return 0
	}
	return w / total
}

// Topsoe returns the Topsoe divergence between the normalised
// distributions of f and o, bit-identical to Heatmap.Topsoe on the same
// data and allocation-free.
func (f *Frozen) Topsoe(o *Frozen) float64 {
	return f.TopsoeBounded(o, 1, 0, 1, math.Inf(1))
}

// JensenShannon returns half the Topsoe divergence.
func (f *Frozen) JensenShannon(o *Frozen) float64 { return f.Topsoe(o) / 2 }

// L1 returns the total-variation-style absolute difference between the
// normalised distributions.
func (f *Frozen) L1(o *Frozen) float64 {
	return f.L1Bounded(o, 1, 0, 1, math.Inf(1))
}

// TopsoeBounded is the early-exit form of Topsoe for best-so-far scans.
// The caller is accumulating a weighted score (acc + scale*d) / weight
// and wants to abandon this comparison as soon as that score can no
// longer drop below bound. Because every Topsoe term is non-negative and
// float addition, multiplication by a positive scale and division by a
// positive weight are monotone, the transformed partial score only grows
// as the walk proceeds: once it reaches bound, the final score is
// guaranteed to reach it too, so the walk returns the partial sum
// immediately. A comparison that completes returns the exact divergence
// (identical to Topsoe); an abandoned one returns a partial value whose
// transformed score is >= bound, which the caller's strict < comparison
// discards — verdicts are therefore bit-identical to the unbounded scan.
//
// Plain nearest-profile scans pass scale=1, acc=0, weight=1 and
// bound=bestSoFar.
func (f *Frozen) TopsoeBounded(o *Frozen, scale, acc, weight, bound float64) float64 {
	var d float64
	ft, ot := f.total, o.total
	fc, oc := f.cells, o.cells
	i, j := 0, 0
	for i < len(fc) && j < len(oc) {
		var pi, qi float64
		a, b := fc[i], oc[j]
		switch {
		case a == b:
			pi, qi = prob(f.weights[i], ft), prob(o.weights[j], ot)
			i++
			j++
		case cellLess(a, b):
			pi = prob(f.weights[i], ft)
			i++
		default:
			qi = prob(o.weights[j], ot)
			j++
		}
		d = mathx.TopsoeAccum(d, pi, qi)
		if (acc+scale*d)/weight >= bound {
			return d
		}
	}
	for ; i < len(fc); i++ {
		d = mathx.TopsoeAccum(d, prob(f.weights[i], ft), 0)
		if (acc+scale*d)/weight >= bound {
			return d
		}
	}
	for ; j < len(oc); j++ {
		d = mathx.TopsoeAccum(d, 0, prob(o.weights[j], ot))
		if (acc+scale*d)/weight >= bound {
			return d
		}
	}
	return d
}

// L1Bounded is the early-exit form of L1; see TopsoeBounded for the
// bound semantics (L1 terms are likewise non-negative).
func (f *Frozen) L1Bounded(o *Frozen, scale, acc, weight, bound float64) float64 {
	var d float64
	ft, ot := f.total, o.total
	fc, oc := f.cells, o.cells
	i, j := 0, 0
	for i < len(fc) && j < len(oc) {
		var pi, qi float64
		a, b := fc[i], oc[j]
		switch {
		case a == b:
			pi, qi = prob(f.weights[i], ft), prob(o.weights[j], ot)
			i++
			j++
		case cellLess(a, b):
			pi = prob(f.weights[i], ft)
			i++
		default:
			qi = prob(o.weights[j], ot)
			j++
		}
		d = mathx.L1Accum(d, pi, qi)
		if (acc+scale*d)/weight >= bound {
			return d
		}
	}
	for ; i < len(fc); i++ {
		d = mathx.L1Accum(d, prob(f.weights[i], ft), 0)
		if (acc+scale*d)/weight >= bound {
			return d
		}
	}
	for ; j < len(oc); j++ {
		d = mathx.L1Accum(d, 0, prob(o.weights[j], ot))
		if (acc+scale*d)/weight >= bound {
			return d
		}
	}
	return d
}
