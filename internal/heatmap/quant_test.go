package heatmap

import (
	"math"
	"testing"

	"mood/internal/geo"
	"mood/internal/mathx"
)

// TestQuantSlackSound is the certificate behind the batch scans'
// pruning pass: on randomized sparse heatmap pairs — overlapping,
// disjoint, empty and identical supports — the completed quantized
// Topsoe and L1 walks must stay within *half* the published slack of
// the exact float64 kernels. The prune rule subtracts the full slack
// before comparing, so holding at half the budget here means pruning
// decisions carry at least a 2× certified margin on top of the ~100×
// the slack constants already budget over the analytic error bounds.
func TestQuantSlackSound(t *testing.T) {
	rng := mathx.NewRand(7)
	inf := float32(math.Inf(1))
	check := func(a, b *Frozen) {
		qa, qb := a.Quantize(), b.Quantize()
		n := qa.Cells() + qb.Cells()

		exactT := a.Topsoe(b)
		approxT := float64(qa.TopsoeQuantBounded(qb, inf))
		if diff := math.Abs(exactT - approxT); diff > QuantTopsoeSlack(n)/2 {
			t.Fatalf("Topsoe quant error %.3g exceeds half the slack %.3g (n=%d, exact=%g)",
				diff, QuantTopsoeSlack(n), n, exactT)
		}

		exactL := a.L1(b)
		approxL := float64(qa.L1QuantBounded(qb, inf))
		if diff := math.Abs(exactL - approxL); diff > QuantL1Slack(n)/2 {
			t.Fatalf("L1 quant error %.3g exceeds half the slack %.3g (n=%d, exact=%g)",
				diff, QuantL1Slack(n), n, exactL)
		}
	}

	// Overlapping random supports, varied density.
	for i := 0; i < 300; i++ {
		check(randomHeatmap(rng, 1+rng.Intn(60), 12).Freeze(),
			randomHeatmap(rng, 1+rng.Intn(60), 12).Freeze())
	}
	// Disjoint supports: single-sided terms only (p·ln 2 per cell).
	for i := 0; i < 50; i++ {
		a := randomHeatmap(rng, 1+rng.Intn(30), 6)
		b := randomHeatmap(rng, 1+rng.Intn(30), 6)
		bf := New(grid())
		for c, w := range b.counts {
			bf.AddCell(geo.Cell{X: c.X + 100, Y: c.Y + 100}, w)
		}
		check(a.Freeze(), bf.Freeze())
	}
	// Identical heatmaps: both divergences are exactly zero, and the
	// quantized walks must agree exactly too (shared cells cancel).
	for i := 0; i < 50; i++ {
		a := randomHeatmap(rng, 1+rng.Intn(30), 8).Freeze()
		qa := a.Quantize()
		if d := qa.TopsoeQuantBounded(qa, inf); d != 0 {
			t.Fatalf("quant Topsoe of identical heatmaps = %g, want exactly 0", d)
		}
		if d := qa.L1QuantBounded(qa, inf); d != 0 {
			t.Fatalf("quant L1 of identical heatmaps = %g, want exactly 0", d)
		}
	}
	// Empty against non-empty: all-zero mass on one side.
	check(New(grid()).Freeze(), randomHeatmap(rng, 10, 6).Freeze())
	check(New(grid()).Freeze(), New(grid()).Freeze())
}

// TestQuantBoundedMonotone pins the early-exit contract: a walk cut by
// a finite bound returns a partial sum that never exceeds the full
// approximation — the prune pass treats partials as lower bounds.
func TestQuantBoundedMonotone(t *testing.T) {
	rng := mathx.NewRand(23)
	inf := float32(math.Inf(1))
	for i := 0; i < 200; i++ {
		a := randomHeatmap(rng, 1+rng.Intn(40), 10).Freeze().Quantize()
		b := randomHeatmap(rng, 1+rng.Intn(40), 10).Freeze().Quantize()
		full := a.TopsoeQuantBounded(b, inf)
		bound := full * float32(rng.Float64())
		partial := a.TopsoeQuantBounded(b, bound)
		if partial > full {
			t.Fatalf("bounded walk returned %g above the full approximation %g", partial, full)
		}
		if full >= bound && partial < bound {
			t.Fatalf("walk with bound %g stopped at %g without certifying (full=%g)", bound, partial, full)
		}
	}
}

// TestFastLog32Accuracy pins the polynomial log's error bound across
// the probability range the kernels feed it (normal floats well above
// subnormal territory).
func TestFastLog32Accuracy(t *testing.T) {
	rng := mathx.NewRand(41)
	for i := 0; i < 10000; i++ {
		x := float32(math.Exp(rng.Float64()*40 - 35)) // e^-35 .. e^5
		got := float64(fastLog32(x))
		want := math.Log(float64(x))
		if diff := math.Abs(got - want); diff > 2e-5 {
			t.Fatalf("fastLog32(%g) = %g, want %g (err %.3g > 2e-5)", x, got, want, diff)
		}
	}
}
