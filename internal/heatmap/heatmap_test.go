package heatmap

import (
	"math"
	"testing"

	"mood/internal/geo"
	"mood/internal/mathx"
	"mood/internal/trace"
)

var origin = geo.Point{Lat: 45.7640, Lon: 4.8357}

func grid() *geo.Grid { return geo.NewGrid(origin, DefaultCellSize) }

func clusteredTrace(user string, center geo.Point, n int) trace.Trace {
	rs := make([]trace.Record, n)
	for i := range rs {
		rs[i] = trace.At(geo.Offset(center, float64(i%5)*30, float64(i%7)*30), int64(i*60))
	}
	return trace.New(user, rs)
}

func TestFromTraceCounts(t *testing.T) {
	g := grid()
	tr := clusteredTrace("u", origin, 50)
	h := FromTrace(g, tr)
	if h.Total() != 50 {
		t.Fatalf("Total = %v, want 50", h.Total())
	}
	if h.Cells() == 0 {
		t.Fatal("no cells populated")
	}
	// All records are within ~200 m of origin, so at most 4 cells
	// (straddling at worst a corner).
	if h.Cells() > 4 {
		t.Fatalf("tight cluster landed in %d cells", h.Cells())
	}
}

func TestProbNormalisation(t *testing.T) {
	g := grid()
	h := FromTrace(g, clusteredTrace("u", origin, 97))
	var sum float64
	for _, cw := range h.TopCells(0) {
		sum += h.Prob(cw.Cell)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestEmptyHeatmapProb(t *testing.T) {
	h := New(grid())
	if p := h.Prob(geo.Cell{}); p != 0 {
		t.Fatalf("empty heatmap prob = %v", p)
	}
	if h.Total() != 0 || h.Cells() != 0 {
		t.Fatal("empty heatmap not empty")
	}
}

func TestTopCellsOrdering(t *testing.T) {
	h := New(grid())
	h.AddCell(geo.Cell{X: 0, Y: 0}, 5)
	h.AddCell(geo.Cell{X: 1, Y: 0}, 10)
	h.AddCell(geo.Cell{X: 2, Y: 0}, 1)
	top := h.TopCells(2)
	if len(top) != 2 {
		t.Fatalf("TopCells(2) returned %d", len(top))
	}
	if top[0].Cell.X != 1 || top[1].Cell.X != 0 {
		t.Fatalf("wrong order: %v", top)
	}
	all := h.TopCells(0)
	if len(all) != 3 {
		t.Fatalf("TopCells(0) returned %d", len(all))
	}
}

func TestTopCellsDeterministicTies(t *testing.T) {
	build := func() []CellWeight {
		h := New(grid())
		h.AddCell(geo.Cell{X: 3, Y: 1}, 2)
		h.AddCell(geo.Cell{X: 1, Y: 2}, 2)
		h.AddCell(geo.Cell{X: 2, Y: 0}, 2)
		return h.TopCells(0)
	}
	a := build()
	b := build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-breaking is not deterministic")
		}
	}
}

func TestTopsoeIdenticalAndDisjoint(t *testing.T) {
	g := grid()
	u := FromTrace(g, clusteredTrace("u", origin, 60))
	if d := u.Topsoe(u); d != 0 {
		t.Fatalf("self divergence = %v", d)
	}
	far := FromTrace(g, clusteredTrace("v", geo.Offset(origin, 50000, 50000), 60))
	d := u.Topsoe(far)
	if math.Abs(d-2*math.Ln2) > 1e-9 {
		t.Fatalf("disjoint divergence = %v, want 2ln2", d)
	}
}

func TestTopsoeDiscriminates(t *testing.T) {
	g := grid()
	u := FromTrace(g, clusteredTrace("u", origin, 60))
	near := FromTrace(g, clusteredTrace("n", geo.Offset(origin, 200, 0), 60))
	far := FromTrace(g, clusteredTrace("f", geo.Offset(origin, 10000, 0), 60))
	if u.Topsoe(near) >= u.Topsoe(far) {
		t.Fatalf("overlapping profile should be closer: near %v, far %v",
			u.Topsoe(near), u.Topsoe(far))
	}
}

func TestDistributionsAligned(t *testing.T) {
	g := grid()
	a := FromTrace(g, clusteredTrace("a", origin, 30))
	b := FromTrace(g, clusteredTrace("b", geo.Offset(origin, 1600, 0), 30))
	p, q := Distributions(a, b)
	if len(p) != len(q) {
		t.Fatal("misaligned distributions")
	}
	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	if math.Abs(sum(p)-1) > 1e-12 || math.Abs(sum(q)-1) > 1e-12 {
		t.Fatalf("distributions not normalised: %v, %v", sum(p), sum(q))
	}
	// Topsoe via Distributions must match Heatmap.Topsoe.
	if d1, d2 := mathx.Topsoe(p, q), a.Topsoe(b); math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("Topsoe mismatch: %v vs %v", d1, d2)
	}
}

func TestCloneIndependence(t *testing.T) {
	h := New(grid())
	h.AddCell(geo.Cell{X: 1, Y: 1}, 3)
	c := h.Clone()
	c.AddCell(geo.Cell{X: 1, Y: 1}, 5)
	if h.Count(geo.Cell{X: 1, Y: 1}) != 3 {
		t.Fatal("clone shares storage")
	}
	if c.Total() != 8 || h.Total() != 3 {
		t.Fatalf("totals wrong: clone %v, orig %v", c.Total(), h.Total())
	}
}

func TestAddWeighted(t *testing.T) {
	h := New(grid())
	h.Add(origin, 2.5)
	h.Add(origin, 0.5)
	c := h.Grid().CellOf(origin)
	if h.Count(c) != 3 {
		t.Fatalf("count = %v", h.Count(c))
	}
	if h.Prob(c) != 1 {
		t.Fatalf("prob = %v", h.Prob(c))
	}
}
