package heatmap

import (
	"testing"

	"mood/internal/mathx"
)

// BenchmarkFrozenTopsoe compares one heatmap divergence through the
// frozen merge walk against the dense Distributions path it replaced.
// The two produce bit-identical values (see the property test); the walk
// must additionally run at 0 allocs/op.
func BenchmarkFrozenTopsoe(b *testing.B) {
	rng := mathx.NewRand(9)
	a := randomHeatmap(rng, 400, 40)
	o := randomHeatmap(rng, 400, 40)
	fa, fo := a.Freeze(), o.Freeze()
	want := fa.Topsoe(fo)

	b.Run("frozen", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if d := fa.Topsoe(fo); d != want {
				b.Fatalf("divergence drifted: %v != %v", d, want)
			}
		}
	})
	b.Run("dense-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, q := Distributions(a, o)
			if d := mathx.Topsoe(p, q); d != want {
				b.Fatalf("divergence drifted: %v != %v", d, want)
			}
		}
	})
}
