package heatmap

import (
	"math"
	"testing"

	"mood/internal/geo"
	"mood/internal/mathx"
)

// randomHeatmap builds a sparse heatmap with n cells drawn from a
// bounded integer box, with small integer-ish weights so supports of two
// heatmaps overlap partially.
func randomHeatmap(rng *mathx.Rand, n, box int) *Heatmap {
	h := New(grid())
	for i := 0; i < n; i++ {
		c := geo.Cell{
			X: int32(rng.Intn(box)),
			Y: int32(rng.Intn(box)),
		}
		h.AddCell(c, float64(1+rng.Intn(9)))
	}
	return h
}

// denseL1 is the reference L1 over the aligned dense vectors, the exact
// computation the pre-Frozen AP code ran.
func denseL1(a, b *Heatmap) float64 {
	p, q := Distributions(a, b)
	var d float64
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d
}

// TestFrozenMatchesDenseExactly is the property test of the merge-walk
// divergences: on randomized sparse heatmaps — overlapping, disjoint and
// empty supports — the Frozen Topsoe, Jensen-Shannon and L1 walks must
// be numerically identical (==, not within tolerance) to the dense
// Distributions-based path, because both visit the union support in the
// same sorted order and fold through the same scalar kernels.
func TestFrozenMatchesDenseExactly(t *testing.T) {
	rng := mathx.NewRand(77)
	check := func(name string, a, b *Heatmap) {
		t.Helper()
		fa, fb := a.Freeze(), b.Freeze()
		p, q := Distributions(a, b)
		wantTopsoe := mathx.Topsoe(p, q)
		if got := fa.Topsoe(fb); got != wantTopsoe {
			t.Errorf("%s: frozen Topsoe %v != dense %v", name, got, wantTopsoe)
		}
		if got := fa.JensenShannon(fb); got != wantTopsoe/2 {
			t.Errorf("%s: frozen JS %v != dense %v", name, fa.JensenShannon(fb), wantTopsoe/2)
		}
		if got, want := fa.L1(fb), denseL1(a, b); got != want {
			t.Errorf("%s: frozen L1 %v != dense %v", name, got, want)
		}
		// Symmetry spot check against the dense reference too.
		pr, qr := Distributions(b, a)
		if got := fb.Topsoe(fa); got != mathx.Topsoe(pr, qr) {
			t.Errorf("%s: reversed frozen Topsoe %v != dense %v", name, got, mathx.Topsoe(pr, qr))
		}
	}

	for round := 0; round < 200; round++ {
		a := randomHeatmap(rng, 1+rng.Intn(40), 12)
		b := randomHeatmap(rng, 1+rng.Intn(40), 12)
		check("overlapping", a, b)
	}
	for round := 0; round < 50; round++ {
		a := randomHeatmap(rng, 1+rng.Intn(20), 8)
		b := New(grid())
		for i := 0; i < 1+rng.Intn(20); i++ {
			// Shifted far outside a's box: guaranteed disjoint support.
			b.AddCell(geo.Cell{X: int32(1000 + rng.Intn(8)), Y: int32(rng.Intn(8))}, float64(1+rng.Intn(9)))
		}
		check("disjoint", a, b)
	}
	empty := New(grid())
	check("both-empty", empty, empty)
	for round := 0; round < 20; round++ {
		a := randomHeatmap(rng, 1+rng.Intn(20), 8)
		check("one-empty", a, empty)
		check("empty-one", empty, a)
	}
}

// TestFrozenSnapshotImmutable checks Freeze is a snapshot: mutating the
// source heatmap afterwards must not change the frozen view.
func TestFrozenSnapshotImmutable(t *testing.T) {
	h := New(grid())
	h.AddCell(geo.Cell{X: 1, Y: 1}, 3)
	h.AddCell(geo.Cell{X: 2, Y: 5}, 7)
	f := h.Freeze()
	other := FrozenFromTrace(grid(), clusteredTrace("o", geo.Offset(origin, 3000, 0), 40))
	before := f.Topsoe(other)
	h.AddCell(geo.Cell{X: 9, Y: 9}, 100)
	if got := f.Topsoe(other); got != before {
		t.Fatalf("frozen view changed after source mutation: %v != %v", got, before)
	}
	if f.Total() != 10 || f.Cells() != 2 {
		t.Fatalf("snapshot stats changed: total %v cells %d", f.Total(), f.Cells())
	}
}

// TestBoundedWalkSoundness checks the early-exit contract: with an
// infinite bound the bounded walks equal the exact divergences, and a
// best-so-far scan over random profiles using bounded walks picks
// exactly the argmin a full scan picks.
func TestBoundedWalkSoundness(t *testing.T) {
	rng := mathx.NewRand(123)
	inf := math.Inf(1)
	for round := 0; round < 100; round++ {
		anon := randomHeatmap(rng, 1+rng.Intn(30), 10).Freeze()
		profiles := make([]*Frozen, 12)
		for i := range profiles {
			profiles[i] = randomHeatmap(rng, 1+rng.Intn(30), 10).Freeze()
		}

		if got, want := anon.TopsoeBounded(profiles[0], 1, 0, 1, inf), anon.Topsoe(profiles[0]); got != want {
			t.Fatalf("unbounded TopsoeBounded %v != Topsoe %v", got, want)
		}
		if got, want := anon.L1Bounded(profiles[0], 1, 0, 1, inf), anon.L1(profiles[0]); got != want {
			t.Fatalf("unbounded L1Bounded %v != L1 %v", got, want)
		}

		// Full scan (exact argmin, strict <, first wins on ties).
		wantIdx, wantBest := -1, inf
		for i, p := range profiles {
			if d := anon.Topsoe(p); d < wantBest {
				wantIdx, wantBest = i, d
			}
		}
		// Early-exit scan.
		gotIdx, gotBest := -1, inf
		for i, p := range profiles {
			if d := anon.TopsoeBounded(p, 1, 0, 1, gotBest); d < gotBest {
				gotIdx, gotBest = i, d
			}
		}
		if gotIdx != wantIdx || gotBest != wantBest {
			t.Fatalf("early-exit scan picked %d (%v), full scan %d (%v)", gotIdx, gotBest, wantIdx, wantBest)
		}
	}
}
