package poi

import (
	"testing"
	"time"

	"mood/internal/geo"
	"mood/internal/trace"
)

var (
	home = geo.Point{Lat: 45.7640, Lon: 4.8357}
	work = geo.Offset(home, 3000, 1500)
)

// dwellTrace simulates: dwell at home (2h), commute, dwell at work (8h),
// commute, dwell at home (2h). Samples every 5 minutes.
func dwellTrace() trace.Trace {
	const step = 300
	var rs []trace.Record
	ts := int64(0)
	stay := func(p geo.Point, d time.Duration) {
		n := int(d/time.Second) / step
		for i := 0; i < n; i++ {
			// Small in-place jitter well under the 200 m diameter.
			q := geo.Offset(p, float64(i%3)*8, float64(i%2)*8)
			rs = append(rs, trace.At(q, ts))
			ts += step
		}
	}
	move := func(from, to geo.Point, d time.Duration) {
		n := int(d/time.Second) / step
		for i := 0; i < n; i++ {
			f := float64(i) / float64(n)
			rs = append(rs, trace.At(geo.Interpolate(from, to, f), ts))
			ts += step
		}
	}
	stay(home, 2*time.Hour)
	move(home, work, 30*time.Minute)
	stay(work, 8*time.Hour)
	move(work, home, 30*time.Minute)
	stay(home, 2*time.Hour)
	return trace.New("u", rs)
}

func TestExtractFindsHomeAndWork(t *testing.T) {
	pois := NewExtractor().Extract(dwellTrace())
	if len(pois) < 2 {
		t.Fatalf("extracted %d POIs, want >= 2", len(pois))
	}
	// The two heaviest POIs must be work (8h) and home (4h total).
	d0 := geo.FastDistance(pois[0].Center, work)
	d1 := geo.FastDistance(pois[1].Center, home)
	if d0 > 150 {
		t.Errorf("heaviest POI %v not at work (%.0f m away)", pois[0].Center, d0)
	}
	if d1 > 150 {
		t.Errorf("second POI %v not at home (%.0f m away)", pois[1].Center, d1)
	}
	// Ordered by descending weight.
	for i := 1; i < len(pois); i++ {
		if pois[i].Records > pois[i-1].Records {
			t.Fatal("POIs not sorted by descending record count")
		}
	}
}

func TestExtractMergesRepeatedVisits(t *testing.T) {
	// The trace visits home twice; merging must fuse them into one POI.
	pois := NewExtractor().Extract(dwellTrace())
	var nearHome int
	for _, p := range pois {
		if geo.FastDistance(p.Center, home) < 150 {
			nearHome++
		}
	}
	if nearHome != 1 {
		t.Fatalf("home appears as %d POIs, want 1 after merging", nearHome)
	}
}

func TestExtractRespectsMinDwell(t *testing.T) {
	// A 20-minute stop must not become a POI with a 1 h threshold.
	var rs []trace.Record
	for i := 0; i < 5; i++ { // 20 min at 5-min sampling
		rs = append(rs, trace.At(home, int64(i*300)))
	}
	pois := NewExtractor().Extract(trace.New("u", rs))
	if len(pois) != 0 {
		t.Fatalf("short stop produced %d POIs", len(pois))
	}

	// The same stop passes with a 10-minute threshold.
	e := Extractor{MaxDiameter: 200, MinDwell: 10 * time.Minute, MergeDist: 100}
	pois = e.Extract(trace.New("u", rs))
	if len(pois) != 1 {
		t.Fatalf("10-min threshold: %d POIs, want 1", len(pois))
	}
}

func TestExtractEmptyAndMoving(t *testing.T) {
	if pois := NewExtractor().Extract(trace.Trace{}); pois != nil {
		t.Fatal("empty trace must yield no POIs")
	}
	// Constant motion (100 m between consecutive samples) never dwells.
	var rs []trace.Record
	for i := 0; i < 100; i++ {
		rs = append(rs, trace.At(geo.Offset(home, float64(i)*100, 0), int64(i*300)))
	}
	if pois := NewExtractor().Extract(trace.New("u", rs)); len(pois) != 0 {
		t.Fatalf("moving trace produced %d POIs", len(pois))
	}
}

func TestExtractDiameterBound(t *testing.T) {
	pois := NewExtractor().Extract(dwellTrace())
	for _, p := range pois {
		// Centers are centroids of sub-200m clusters; dwell must be
		// consistent with bounds.
		if p.Last < p.First {
			t.Fatal("POI time bounds inverted")
		}
		if p.Records <= 0 {
			t.Fatal("POI without records")
		}
	}
}

func TestWeights(t *testing.T) {
	pois := []POI{{Records: 6}, {Records: 3}, {Records: 1}}
	ws := Weights(pois)
	if ws[0] != 0.6 || ws[1] != 0.3 || ws[2] != 0.1 {
		t.Fatalf("weights = %v", ws)
	}
	if TotalRecords(pois) != 10 {
		t.Fatalf("TotalRecords = %d", TotalRecords(pois))
	}
	empty := Weights(nil)
	if len(empty) != 0 {
		t.Fatalf("Weights(nil) = %v", empty)
	}
	zero := Weights([]POI{{Records: 0}})
	if zero[0] != 0 {
		t.Fatalf("zero-record weights = %v", zero)
	}
}

func TestExtractorZeroValuesUseDefaults(t *testing.T) {
	var e Extractor // zero value
	pois := e.Extract(dwellTrace())
	if len(pois) < 2 {
		t.Fatalf("zero-value extractor found %d POIs", len(pois))
	}
}
