// Package poi extracts Points of Interest from mobility traces using the
// spatio-temporal clustering of Zhou et al. adopted by the POI- and
// PIT-attacks [27, 16]: a POI is a place of bounded diameter where the
// user dwelt for at least a minimum duration.
//
// The paper parameterises the extractor with a 200 m cluster diameter
// and a 1 h minimum dwell time (§4.1.1); those are the defaults here.
package poi

import (
	"fmt"
	"sort"
	"time"

	"mood/internal/geo"
	"mood/internal/trace"
)

// Default extraction parameters from the paper (§4.1.1).
const (
	DefaultMaxDiameter = 200.0     // meters
	DefaultMinDwell    = time.Hour // minimum stay duration
	DefaultMergeDist   = 100.0     // merge POIs closer than this
)

// POI is a meaningful place: the centroid of a dwell cluster.
type POI struct {
	Center geo.Point
	// Records is the number of trace records inside the cluster; the
	// PIT-attack uses it as the POI weight.
	Records int
	// Dwell is the total time spent in the cluster.
	Dwell time.Duration
	// First and Last bound the visit in time (Unix seconds).
	First, Last int64
}

// String renders the POI compactly.
func (p POI) String() string {
	return fmt.Sprintf("poi(%v, %d recs, %s)", p.Center, p.Records, p.Dwell)
}

// Extractor clusters traces into POIs.
type Extractor struct {
	// MaxDiameter bounds the spatial extent of a cluster in meters.
	MaxDiameter float64
	// MinDwell is the minimum time spent in a cluster for it to count
	// as a POI.
	MinDwell time.Duration
	// MergeDist merges extracted POIs whose centers are closer than
	// this many meters (repeated visits to the same place).
	MergeDist float64
}

// NewExtractor returns an extractor with the paper's parameters.
func NewExtractor() Extractor {
	return Extractor{
		MaxDiameter: DefaultMaxDiameter,
		MinDwell:    DefaultMinDwell,
		MergeDist:   DefaultMergeDist,
	}
}

// Extract returns the POIs of t, ordered by descending record count
// (the state order of the PIT-attack's Markov chains).
func (e Extractor) Extract(t trace.Trace) []POI {
	if t.Len() == 0 {
		return nil
	}
	maxD := e.MaxDiameter
	if maxD <= 0 {
		maxD = DefaultMaxDiameter
	}
	minDwell := int64(e.MinDwell / time.Second)
	if minDwell <= 0 {
		minDwell = int64(DefaultMinDwell / time.Second)
	}

	var pois []POI
	var cluster []trace.Record
	var centroid geo.Point

	flush := func() {
		if len(cluster) == 0 {
			return
		}
		first := cluster[0].TS
		last := cluster[len(cluster)-1].TS
		if last-first >= minDwell {
			pois = append(pois, POI{
				Center:  centroid,
				Records: len(cluster),
				Dwell:   time.Duration(last-first) * time.Second,
				First:   first,
				Last:    last,
			})
		}
		cluster = cluster[:0]
	}

	for _, r := range t.Records {
		p := r.Point()
		if len(cluster) == 0 {
			cluster = append(cluster, r)
			centroid = p
			continue
		}
		// A record joins the cluster if it stays within MaxDiameter/2 of
		// the running centroid — the standard streaming approximation of
		// the diameter bound.
		if geo.FastDistance(centroid, p) <= maxD/2 {
			cluster = append(cluster, r)
			n := float64(len(cluster))
			centroid = geo.Point{
				Lat: centroid.Lat + (p.Lat-centroid.Lat)/n,
				Lon: centroid.Lon + (p.Lon-centroid.Lon)/n,
			}
			continue
		}
		flush()
		cluster = append(cluster, r)
		centroid = p
	}
	flush()

	pois = e.merge(pois)
	sort.SliceStable(pois, func(i, j int) bool { return pois[i].Records > pois[j].Records })
	return pois
}

// merge fuses POIs whose centers are within MergeDist, accumulating
// their weights; repeated daily visits to home/work then appear as a
// single heavy POI.
func (e Extractor) merge(pois []POI) []POI {
	dist := e.MergeDist
	if dist <= 0 {
		return pois
	}
	merged := make([]POI, 0, len(pois))
	for _, p := range pois {
		found := false
		for i := range merged {
			if geo.FastDistance(merged[i].Center, p.Center) <= dist {
				m := &merged[i]
				total := float64(m.Records + p.Records)
				w := float64(p.Records) / total
				m.Center = geo.Interpolate(m.Center, p.Center, w)
				m.Records += p.Records
				m.Dwell += p.Dwell
				if p.First < m.First {
					m.First = p.First
				}
				if p.Last > m.Last {
					m.Last = p.Last
				}
				found = true
				break
			}
		}
		if !found {
			merged = append(merged, p)
		}
	}
	return merged
}

// TotalRecords sums the record counts of the POIs.
func TotalRecords(pois []POI) int {
	var n int
	for _, p := range pois {
		n += p.Records
	}
	return n
}

// Weights returns the record-count distribution across POIs, normalised
// to sum to 1 (the PIT-attack's POI weights).
func Weights(pois []POI) []float64 {
	total := TotalRecords(pois)
	ws := make([]float64, len(pois))
	if total == 0 {
		return ws
	}
	for i, p := range pois {
		ws[i] = float64(p.Records) / float64(total)
	}
	return ws
}
