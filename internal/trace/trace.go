// Package trace defines the mobility-data model of MooD: spatio-temporal
// records, per-user traces and datasets, together with the slicing
// operations (time windows, fixed-duration chunks, recursive halving)
// that the fine-grained protection stage of the paper relies on.
//
// A mobility trace is a time-ordered sequence of records
// r = (lat, lon, t), i.e. an element of (R² × R⁺)* in the paper's
// notation (§2.1).
package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mood/internal/geo"
)

// ErrEmptyTrace is returned by operations that need at least one record.
var ErrEmptyTrace = errors.New("trace: empty trace")

// Record is a single spatio-temporal sample of a user's position.
// Timestamps are Unix seconds: hot paths iterate millions of records and
// int64 comparisons keep them cheap; use Time for API-boundary conversion.
type Record struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	TS  int64   `json:"ts"`
}

// Point returns the spatial component of the record.
func (r Record) Point() geo.Point { return geo.Point{Lat: r.Lat, Lon: r.Lon} }

// Time returns the timestamp as a time.Time in UTC.
func (r Record) Time() time.Time { return time.Unix(r.TS, 0).UTC() }

// At builds a record from a point and a Unix timestamp.
func At(p geo.Point, ts int64) Record { return Record{Lat: p.Lat, Lon: p.Lon, TS: ts} }

// Trace is the mobility trace of one user: records sorted by ascending
// timestamp.
type Trace struct {
	User string `json:"user"`
	// Records is a named slice solely for its JSON fast paths (see
	// json.go); it assigns freely to and from []Record.
	Records Records `json:"records"`
}

// New returns a trace for user with its records sorted by time.
// The records slice is copied so the caller keeps ownership of its input.
func New(user string, records []Record) Trace {
	rs := make([]Record, len(records))
	copy(rs, records)
	t := Trace{User: user, Records: rs}
	t.SortInPlace()
	return t
}

// SortInPlace orders the records by ascending timestamp (stable, so
// simultaneous records such as TRL dummies keep their relative order).
func (t *Trace) SortInPlace() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].TS < t.Records[j].TS
	})
}

// Sorted reports whether the records are in ascending time order.
func (t Trace) Sorted() bool {
	return sort.SliceIsSorted(t.Records, func(i, j int) bool {
		return t.Records[i].TS < t.Records[j].TS
	})
}

// Len returns the number of records.
func (t Trace) Len() int { return len(t.Records) }

// Empty reports whether the trace has no records.
func (t Trace) Empty() bool { return len(t.Records) == 0 }

// Start returns the first timestamp, or 0 for an empty trace.
func (t Trace) Start() int64 {
	if t.Empty() {
		return 0
	}
	return t.Records[0].TS
}

// End returns the last timestamp, or 0 for an empty trace.
func (t Trace) End() int64 {
	if t.Empty() {
		return 0
	}
	return t.Records[len(t.Records)-1].TS
}

// Duration returns End-Start as a time.Duration; zero for traces with
// fewer than two records.
func (t Trace) Duration() time.Duration {
	if t.Len() < 2 {
		return 0
	}
	return time.Duration(t.End()-t.Start()) * time.Second
}

// Clone returns a deep copy of the trace.
func (t Trace) Clone() Trace {
	rs := make([]Record, len(t.Records))
	copy(rs, t.Records)
	return Trace{User: t.User, Records: rs}
}

// WithUser returns a shallow copy of the trace relabelled to user.
// The records slice is shared; callers that mutate records must Clone.
func (t Trace) WithUser(user string) Trace {
	return Trace{User: user, Records: t.Records}
}

// Window returns the sub-trace with timestamps in [from, to). The
// returned trace shares no storage with t.
func (t Trace) Window(from, to int64) Trace {
	lo := sort.Search(len(t.Records), func(i int) bool { return t.Records[i].TS >= from })
	hi := sort.Search(len(t.Records), func(i int) bool { return t.Records[i].TS >= to })
	rs := make([]Record, hi-lo)
	copy(rs, t.Records[lo:hi])
	return Trace{User: t.User, Records: rs}
}

// SplitAt splits the trace into the records strictly before ts and the
// records at or after ts.
func (t Trace) SplitAt(ts int64) (before, after Trace) {
	i := sort.Search(len(t.Records), func(i int) bool { return t.Records[i].TS >= ts })
	b := make([]Record, i)
	copy(b, t.Records[:i])
	a := make([]Record, len(t.Records)-i)
	copy(a, t.Records[i:])
	return Trace{User: t.User, Records: b}, Trace{User: t.User, Records: a}
}

// SplitHalf splits the trace at the midpoint of its time span, as the
// fine-grained stage of MooD's Algorithm 1 does. Traces with fewer than
// two records return themselves plus an empty half.
func (t Trace) SplitHalf() (first, second Trace) {
	if t.Len() < 2 {
		return t.Clone(), Trace{User: t.User}
	}
	mid := t.Start() + (t.End()-t.Start())/2
	first, second = t.SplitAt(mid)
	if first.Empty() || second.Empty() {
		// Degenerate time distribution (e.g. all records share one
		// timestamp): fall back to splitting by record count so the
		// recursion always makes progress.
		h := t.Len() / 2
		f := make([]Record, h)
		copy(f, t.Records[:h])
		s := make([]Record, t.Len()-h)
		copy(s, t.Records[h:])
		return Trace{User: t.User, Records: f}, Trace{User: t.User, Records: s}
	}
	return first, second
}

// Chunks cuts the trace into sub-traces of at most d duration, aligned
// to the trace start. Empty chunks are skipped. The paper uses d = 24 h
// to model daily crowd-sensing uploads (§4.2).
func (t Trace) Chunks(d time.Duration) []Trace {
	if t.Empty() {
		return nil
	}
	if d <= 0 {
		return []Trace{t.Clone()}
	}
	sec := int64(d / time.Second)
	if sec <= 0 {
		sec = 1
	}
	var out []Trace
	start := t.Start()
	end := t.End()
	for from := start; from <= end; from += sec {
		c := t.Window(from, from+sec)
		if !c.Empty() {
			out = append(out, c)
		}
	}
	return out
}

// Append returns t with extra records appended and re-sorted.
func (t Trace) Append(records ...Record) Trace {
	rs := make([]Record, 0, len(t.Records)+len(records))
	rs = append(rs, t.Records...)
	rs = append(rs, records...)
	nt := Trace{User: t.User, Records: rs}
	nt.SortInPlace()
	return nt
}

// Merge combines several traces into one (records re-sorted). The user
// label of the first non-empty trace is kept.
func Merge(traces ...Trace) Trace {
	var user string
	var n int
	for _, t := range traces {
		if user == "" && !t.Empty() {
			user = t.User
		}
		n += t.Len()
	}
	rs := make([]Record, 0, n)
	for _, t := range traces {
		rs = append(rs, t.Records...)
	}
	out := Trace{User: user, Records: rs}
	out.SortInPlace()
	return out
}

// BBox returns the bounding box of the trace's records.
func (t Trace) BBox() geo.BBox {
	b := geo.EmptyBBox()
	for _, r := range t.Records {
		b = b.Extend(r.Point())
	}
	return b
}

// PathLength returns the cumulative travelled distance in meters.
func (t Trace) PathLength() float64 {
	var d float64
	for i := 1; i < len(t.Records); i++ {
		d += geo.FastDistance(t.Records[i-1].Point(), t.Records[i].Point())
	}
	return d
}

// Validate checks structural invariants: sorted timestamps and valid
// coordinates. It returns a descriptive error for the first violation.
func (t Trace) Validate() error {
	for i, r := range t.Records {
		if !r.Point().Valid() {
			return fmt.Errorf("trace %q: record %d has invalid coordinates %v", t.User, i, r.Point())
		}
		if i > 0 && r.TS < t.Records[i-1].TS {
			return fmt.Errorf("trace %q: records out of order at index %d", t.User, i)
		}
	}
	return nil
}

// String summarises the trace.
func (t Trace) String() string {
	return fmt.Sprintf("trace(%s, %d records, %s)", t.User, t.Len(), t.Duration())
}
