package trace

import (
	"time"
)

// Downsample returns a copy of t keeping at most one record per period,
// the first of each period bucket. Dataset preparation uses it to
// normalise wildly different GPS sampling rates before comparing
// datasets (the public mobility datasets range from 1 s to 10 min
// between fixes).
func (t Trace) Downsample(period time.Duration) Trace {
	if t.Empty() || period <= 0 {
		return t.Clone()
	}
	sec := int64(period / time.Second)
	if sec <= 0 {
		sec = 1
	}
	out := make([]Record, 0, t.Len())
	lastBucket := int64(-1 << 62)
	for _, r := range t.Records {
		bucket := r.TS / sec
		if bucket != lastBucket {
			out = append(out, r)
			lastBucket = bucket
		}
	}
	return Trace{User: t.User, Records: out}
}

// Thin returns a copy of t keeping every k-th record (k <= 1 keeps
// everything).
func (t Trace) Thin(k int) Trace {
	if k <= 1 {
		return t.Clone()
	}
	out := make([]Record, 0, (t.Len()+k-1)/k)
	for i := 0; i < t.Len(); i += k {
		out = append(out, t.Records[i])
	}
	return Trace{User: t.User, Records: out}
}

// Downsample applies Trace.Downsample to every trace of the dataset.
func (d Dataset) Downsample(period time.Duration) Dataset {
	return d.Map(func(t Trace) Trace { return t.Downsample(period) })
}
