package trace

import (
	"testing"
	"time"
)

// splitterInvariants checks the universal Splitter contract: no record
// lost, no record duplicated, order preserved within sub-traces.
func splitterInvariants(t *testing.T, s Splitter, tr Trace) {
	t.Helper()
	parts := s.Split(tr)
	var total int
	for i, p := range parts {
		if p.Empty() {
			t.Fatalf("%s: part %d empty", s.Name(), i)
		}
		if !p.Sorted() {
			t.Fatalf("%s: part %d unsorted", s.Name(), i)
		}
		total += p.Len()
	}
	if total != tr.Len() {
		t.Fatalf("%s: %d records in, %d out", s.Name(), tr.Len(), total)
	}
}

func TestHalfSplitter(t *testing.T) {
	s := HalfSplitter{}
	tr := lineTrace("u", 50, 0, 120)
	splitterInvariants(t, s, tr)
	parts := s.Split(tr)
	if len(parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(parts))
	}
	if s.Name() != "half" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestFixedDurationSplitter(t *testing.T) {
	s := FixedDurationSplitter{D: time.Hour}
	tr := lineTrace("u", 120, 0, 120) // 4 hours, 1 record / 2 min
	splitterInvariants(t, s, tr)
	parts := s.Split(tr)
	if len(parts) != 4 {
		t.Fatalf("parts = %d, want 4", len(parts))
	}
	for _, p := range parts {
		if p.Duration() > time.Hour {
			t.Fatalf("part exceeds an hour: %v", p.Duration())
		}
	}
}

func TestGapSplitter(t *testing.T) {
	// Three bursts separated by > 1h gaps.
	var rs []Record
	for burst := 0; burst < 3; burst++ {
		base := int64(burst) * 10000
		for i := 0; i < 5; i++ {
			rs = append(rs, At(lyon, base+int64(i)*60))
		}
	}
	tr := New("u", rs)
	s := GapSplitter{Gap: time.Hour}
	splitterInvariants(t, s, tr)
	parts := s.Split(tr)
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(parts))
	}
	// A gap larger than any spacing yields one part.
	one := GapSplitter{Gap: 100 * time.Hour}.Split(tr)
	if len(one) != 1 {
		t.Fatalf("huge gap produced %d parts", len(one))
	}
}

func TestDistanceSplitter(t *testing.T) {
	// Records every 10 m; cut every 45 m -> parts of ~5 records.
	tr := lineTrace("u", 20, 0, 60)
	s := DistanceSplitter{D: 45}
	splitterInvariants(t, s, tr)
	parts := s.Split(tr)
	if len(parts) < 3 {
		t.Fatalf("parts = %d, want >= 3", len(parts))
	}
}

func TestSplittersOnEmptyAndSingle(t *testing.T) {
	splitters := []Splitter{
		HalfSplitter{},
		FixedDurationSplitter{D: time.Hour},
		GapSplitter{Gap: time.Hour},
		DistanceSplitter{D: 100},
	}
	single := lineTrace("u", 1, 42, 1)
	for _, s := range splitters {
		if parts := s.Split(Trace{User: "u"}); len(parts) != 0 {
			t.Errorf("%s: empty trace produced %d parts", s.Name(), len(parts))
		}
		parts := s.Split(single)
		if len(parts) != 1 || parts[0].Len() != 1 {
			t.Errorf("%s: single-record trace mishandled: %v", s.Name(), parts)
		}
	}
}

func TestGapSplitterZeroGap(t *testing.T) {
	tr := lineTrace("u", 5, 0, 60)
	parts := GapSplitter{}.Split(tr)
	if len(parts) != 1 || parts[0].Len() != 5 {
		t.Fatalf("zero gap must return the whole trace, got %v parts", len(parts))
	}
}

func TestSubTraceIsCopy(t *testing.T) {
	tr := lineTrace("u", 10, 0, 60)
	parts := HalfSplitter{}.Split(tr)
	parts[0].Records[0].Lat = -1
	if tr.Records[0].Lat == -1 {
		t.Fatal("split parts share storage with the source")
	}
}
