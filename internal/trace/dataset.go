package trace

import (
	"fmt"
	"sort"
	"strconv"
	"time"
)

// Dataset is a named collection of per-user traces. Traces are kept
// sorted by user ID so every iteration order in the pipeline is
// deterministic.
type Dataset struct {
	Name   string  `json:"name"`
	Traces []Trace `json:"traces"`
}

// NewDataset builds a dataset from traces, sorting them by user ID.
// Traces with duplicate user IDs are merged.
func NewDataset(name string, traces []Trace) Dataset {
	byUser := make(map[string][]Trace, len(traces))
	users := make([]string, 0, len(traces))
	for _, t := range traces {
		if _, seen := byUser[t.User]; !seen {
			users = append(users, t.User)
		}
		byUser[t.User] = append(byUser[t.User], t)
	}
	sort.Strings(users)
	out := make([]Trace, 0, len(users))
	for _, u := range users {
		ts := byUser[u]
		if len(ts) == 1 {
			out = append(out, ts[0])
		} else {
			out = append(out, Merge(ts...))
		}
	}
	return Dataset{Name: name, Traces: out}
}

// Users returns the sorted user IDs present in the dataset.
func (d Dataset) Users() []string {
	users := make([]string, len(d.Traces))
	for i, t := range d.Traces {
		users[i] = t.User
	}
	return users
}

// NumUsers returns the number of distinct users.
func (d Dataset) NumUsers() int { return len(d.Traces) }

// NumRecords returns |D|_r, the total record count of the dataset
// (the unit of the paper's data-loss metric, Eq. 7).
func (d Dataset) NumRecords() int {
	var n int
	for _, t := range d.Traces {
		n += t.Len()
	}
	return n
}

// Trace returns the trace of user, and whether it exists.
func (d Dataset) Trace(user string) (Trace, bool) {
	i := sort.Search(len(d.Traces), func(i int) bool { return d.Traces[i].User >= user })
	if i < len(d.Traces) && d.Traces[i].User == user {
		return d.Traces[i], true
	}
	return Trace{}, false
}

// Filter returns a dataset with only the traces for which keep returns
// true.
func (d Dataset) Filter(keep func(Trace) bool) Dataset {
	out := make([]Trace, 0, len(d.Traces))
	for _, t := range d.Traces {
		if keep(t) {
			out = append(out, t)
		}
	}
	return Dataset{Name: d.Name, Traces: out}
}

// Map returns a dataset with f applied to every trace. Traces mapped to
// empty are dropped.
func (d Dataset) Map(f func(Trace) Trace) Dataset {
	out := make([]Trace, 0, len(d.Traces))
	for _, t := range d.Traces {
		if nt := f(t); !nt.Empty() {
			out = append(out, nt)
		}
	}
	return Dataset{Name: d.Name, Traces: out}
}

// Window restricts every trace to [from, to) and drops users that end up
// empty.
func (d Dataset) Window(from, to int64) Dataset {
	return d.Map(func(t Trace) Trace { return t.Window(from, to) })
}

// TimeSpan returns the earliest start and the latest end across traces.
func (d Dataset) TimeSpan() (start, end int64) {
	first := true
	for _, t := range d.Traces {
		if t.Empty() {
			continue
		}
		if first || t.Start() < start {
			start = t.Start()
		}
		if first || t.End() > end {
			end = t.End()
		}
		first = false
	}
	return start, end
}

// SplitTrainTest splits each user's trace chronologically at the given
// fraction of the dataset's global time span and keeps only users active
// in both halves, mirroring the paper's 15-day background / 15-day test
// protocol (§4.2). minRecords is the activity threshold per half.
func (d Dataset) SplitTrainTest(frac float64, minRecords int) (train, test Dataset) {
	start, end := d.TimeSpan()
	cut := start + int64(float64(end-start)*frac)
	trainTraces := make([]Trace, 0, len(d.Traces))
	testTraces := make([]Trace, 0, len(d.Traces))
	for _, t := range d.Traces {
		b, a := t.SplitAt(cut)
		if b.Len() >= minRecords && a.Len() >= minRecords {
			trainTraces = append(trainTraces, b)
			testTraces = append(testTraces, a)
		}
	}
	return Dataset{Name: d.Name + "/train", Traces: trainTraces},
		Dataset{Name: d.Name + "/test", Traces: testTraces}
}

// Validate checks every trace and that user IDs are unique and sorted.
func (d Dataset) Validate() error {
	for i, t := range d.Traces {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("dataset %q: %w", d.Name, err)
		}
		if i > 0 && d.Traces[i-1].User >= t.User {
			return fmt.Errorf("dataset %q: traces not strictly sorted by user at index %d (%q >= %q)",
				d.Name, i, d.Traces[i-1].User, t.User)
		}
	}
	return nil
}

// String summarises the dataset.
func (d Dataset) String() string {
	return fmt.Sprintf("dataset(%s, %d users, %d records)", d.Name, d.NumUsers(), d.NumRecords())
}

// IDRenewer hands out fresh pseudonyms. The fine-grained stage of MooD
// publishes each protected sub-trace under a new identity so that
// sub-traces "seem to come from different users" (§3.4).
type IDRenewer struct {
	prefix string
	next   int
}

// NewIDRenewer returns a renewer whose pseudonyms start with prefix.
func NewIDRenewer(prefix string) *IDRenewer {
	return &IDRenewer{prefix: prefix}
}

// Renew relabels the trace with a fresh pseudonym and returns it.
func (r *IDRenewer) Renew(t Trace) Trace {
	r.next++
	return t.WithUser(r.prefix + "-" + strconv.Itoa(r.next))
}

// RenewAll relabels every trace with a fresh pseudonym.
func (r *IDRenewer) RenewAll(traces []Trace) []Trace {
	out := make([]Trace, len(traces))
	for i, t := range traces {
		out[i] = r.Renew(t)
	}
	return out
}

// Day is a convenience constant for chunking (24 h in seconds).
const Day = 24 * time.Hour
