package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// TestRecordMarshalMatchesGeneric pins AppendRecordsJSON to the
// generic encoder's bytes: snapshots, golden fixtures and every wire
// payload depend on the format not moving.
func TestRecordMarshalMatchesGeneric(t *testing.T) {
	cases := []Record{
		{},
		{Lat: 45.7, Lon: 4.8, TS: 1000},
		{Lat: -45.5, Lon: -4.25, TS: -1},
		{Lat: 0.1 + 0.2, Lon: 1.0 / 3.0, TS: 1 << 62},
		{Lat: 1e-7, Lon: 1e21, TS: 0},
		{Lat: -1e-9, Lon: 2.5e-8, TS: 42},
		{Lat: math.MaxFloat64, Lon: math.SmallestNonzeroFloat64, TS: math.MinInt64},
		{Lat: 90, Lon: -180, TS: 1700000000},
	}
	for _, rec := range cases {
		got, err := AppendRecordsJSON(nil, []Record{rec})
		if err != nil {
			t.Fatalf("%+v: %v", rec, err)
		}
		want, err := json.Marshal([]recordAlias{{Lat: rec.Lat, Lon: rec.Lon, TS: rec.TS}})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%+v: fast marshal %s != generic %s", rec, got, want)
		}
	}

	for _, bad := range []Records{{{Lat: math.NaN()}}, {{Lon: math.Inf(1)}}} {
		if _, err := AppendRecordsJSON(nil, bad); err == nil {
			t.Errorf("%+v: NaN/Inf must fail like the generic encoder", bad)
		}
	}
	if out, err := AppendRecordsJSON(nil, nil); err != nil || string(out) != "null" {
		t.Errorf("nil slice: %s, %v (want null)", out, err)
	}
}

// TestRecordsArrayFastPaths pins the slice-level fast paths (the hot
// wire shape) to the generic encoder and decoder.
func TestRecordsArrayFastPaths(t *testing.T) {
	cases := []Records{
		nil,
		{},
		{{Lat: 45.7, Lon: 4.8, TS: 1000}},
		{{Lat: 1, Lon: 2, TS: 3}, {Lat: -1e-9, Lon: 1e21, TS: -5}, {}},
	}
	for _, rs := range cases {
		got, err := AppendRecordsJSON(nil, rs)
		if err != nil {
			t.Fatal(err)
		}
		alias := make([]recordAlias, len(rs))
		for i, r := range rs {
			alias[i] = recordAlias(r)
		}
		var want []byte
		if rs == nil {
			want = []byte("null")
		} else {
			if want, err = json.Marshal(alias); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(got, want) {
			t.Errorf("marshal %v: fast %s != generic %s", rs, got, want)
		}

		var back Records
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", got, err)
		}
		if len(back) != len(rs) {
			t.Fatalf("round trip %s: %v", got, back)
		}
		for i := range rs {
			if back[i] != rs[i] {
				t.Errorf("round trip %s: element %d = %+v, want %+v", got, i, back[i], rs[i])
			}
		}
	}

	// Non-canonical arrays must defer to the generic decoder, values
	// and errors alike.
	inputs := []string{
		`null`,
		`[{"LAT":1,"lon":2,"ts":3}]`,
		`[{"lat":1,"lon":2,"ts":3},{"lat":+1,"lon":0,"ts":0}]`,
		`[1,2]`,
		`[{"lat":1]`,
		`[{"lat":1},`,
		`  [ { "lat" : 1.5 } , {} ]  `,
	}
	for _, in := range inputs {
		var fast Records
		fastErr := json.Unmarshal([]byte(in), &fast)
		var generic []recordAlias
		genericErr := json.Unmarshal([]byte(in), &generic)
		if (fastErr == nil) != (genericErr == nil) {
			t.Errorf("%s: error mismatch: fast=%v generic=%v", in, fastErr, genericErr)
			continue
		}
		if fastErr != nil {
			continue
		}
		if len(fast) != len(generic) {
			t.Errorf("%s: fast %v != generic %v", in, fast, generic)
			continue
		}
		for i := range fast {
			if fast[i] != (Record{Lat: generic[i].Lat, Lon: generic[i].Lon, TS: generic[i].TS}) {
				t.Errorf("%s: element %d: fast %+v != generic %+v", in, i, fast[i], generic[i])
			}
		}
	}
}

// TestRecordUnmarshalMatchesGeneric pins the fast parser (and its
// fallback) to the generic decoder: same values on success, an error
// exactly when the generic decoder errors.
func TestRecordUnmarshalMatchesGeneric(t *testing.T) {
	inputs := []string{
		`{"lat":45.7,"lon":4.8,"ts":1000}`,
		`{"ts":5,"lon":-1,"lat":2}`,          // any order
		`{"lat":1e-7,"lon":-2.5E+3,"ts":-9}`, // exponents
		`{"lat":1,"lon":2,"ts":3,"lat":9}`,   // duplicate key, last wins
		`{}`,
		`{"lat":0,"lon":0,"ts":0}`,
		` { "lat" : 1 , "lon" : 2 , "ts" : 3 } `, // whitespace
		`{"LAT":1,"lon":2,"ts":3}`,               // case folding (fallback)
		`{"lat":1,"lon":2,"ts":3,"extra":"x"}`,   // unknown key (fallback)
		`{"lat":"1","lon":2,"ts":3}`,             // string where number expected
		`{"lat":+1,"lon":2,"ts":3}`,              // invalid JSON number
		`{"lat":01,"lon":2,"ts":3}`,              // leading zero
		`{"lat":.5,"lon":2,"ts":3}`,              // bare fraction
		`{"lat":1,"lon":2,"ts":1.5}`,             // float into int64
		`{"lat":1,"lon":2,"ts":1e2}`,             // exponent into int64
		`{"lat":null,"lon":2,"ts":3}`,            // null (fallback: field untouched)
		`{"lat":1`,                               // truncated
		`[1,2,3]`,
		`"not an object"`,
	}
	for _, in := range inputs {
		var fast Record
		fastErr := json.Unmarshal([]byte(in), &fast)
		var generic recordAlias
		genericErr := json.Unmarshal([]byte(in), &generic)
		if (fastErr == nil) != (genericErr == nil) {
			t.Errorf("%s: error mismatch: fast=%v generic=%v", in, fastErr, genericErr)
			continue
		}
		if fastErr == nil && fast != (Record{Lat: generic.Lat, Lon: generic.Lon, TS: generic.TS}) {
			t.Errorf("%s: fast %+v != generic %+v", in, fast, generic)
		}
	}
}

// FuzzRecordJSON cross-checks the fast paths against the generic
// decoder on arbitrary input, and round-trips every record the fast
// marshaller emits.
func FuzzRecordJSON(f *testing.F) {
	f.Add(`{"lat":45.7,"lon":4.8,"ts":1000}`)
	f.Add(`{"lat":+1,"lon":.5,"ts":01}`)
	f.Add(`{"LAT":1e-7,"lon":-2.5E+3,"ts":-9,"x":[]}`)
	f.Add(`{"lat":0x1p-2,"lon":1,"ts":1}`)
	f.Fuzz(func(t *testing.T, in string) {
		var fast Record
		fastErr := json.Unmarshal([]byte(in), &fast)
		var generic recordAlias
		genericErr := json.Unmarshal([]byte(in), &generic)
		if (fastErr == nil) != (genericErr == nil) {
			t.Fatalf("%q: error mismatch: fast=%v generic=%v", in, fastErr, genericErr)
		}
		if fastErr != nil {
			return
		}
		want := Record{Lat: generic.Lat, Lon: generic.Lon, TS: generic.TS}
		if fast != want {
			t.Fatalf("%q: fast %+v != generic %+v", in, fast, want)
		}
		out, err := AppendRecordsJSON(nil, Records{fast})
		if err != nil {
			return // NaN/Inf cannot appear from decode; other errors impossible
		}
		genericOut, err := json.Marshal([]recordAlias{recordAlias(fast)})
		if err != nil {
			t.Fatalf("generic remarshal: %v", err)
		}
		if !bytes.Equal(out, genericOut) {
			t.Fatalf("%q: fast marshal %s != generic %s", in, out, genericOut)
		}

		// The array decoder must agree with the generic path too.
		arr := []byte("[" + in + "," + in + "]")
		var fastArr Records
		fastArrErr := json.Unmarshal(arr, &fastArr)
		var genericArr []recordAlias
		genericArrErr := json.Unmarshal(arr, &genericArr)
		if (fastArrErr == nil) != (genericArrErr == nil) {
			t.Fatalf("%q: array error mismatch: fast=%v generic=%v", arr, fastArrErr, genericArrErr)
		}
		if fastArrErr == nil {
			for i := range fastArr {
				if fastArr[i] != (Record{Lat: genericArr[i].Lat, Lon: genericArr[i].Lon, TS: genericArr[i].TS}) {
					t.Fatalf("%q: array element %d: fast %+v != generic %+v", arr, i, fastArr[i], genericArr[i])
				}
			}
		}
	})
}
