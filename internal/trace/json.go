package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strconv"
)

// Hand-rolled JSON fast paths for records. Records are the unit of
// every wire payload — upload chunks, batch lines, dataset pages,
// snapshots — and the generic reflective encoder/decoder dominated the
// service upload benchmarks. Records (the slice type carried by Trace
// and the upload requests) encodes and decodes the whole array in one
// pass; Record keeps a scalar decode fast path for payloads that hold
// bare records. Both keep the exact stdlib wire format — the encoder
// reproduces encoding/json's float formatting byte for byte (pinned by
// TestRecordMarshalMatchesGeneric) — and fall back to the generic
// decoder for anything unusual (escapes, case-folded keys, unknown
// fields, nulls, malformed input) so semantics, including error
// behaviour, stay identical.

// Records is a JSON-accelerated []Record. It is a plain named slice —
// every []Record value converts implicitly where a Records is expected
// and vice versa.
//
// Only decoding is customised. Encoding deliberately stays generic:
// a MarshalJSON (on the slice or the element) routes encoding/json
// through an interface call plus a mandatory re-validation (compact)
// pass over the produced bytes, which benchmarks ~2x slower than the
// cached reflective struct encoder; AppendRecordsJSON below provides
// the allocation-free single-pass encoder for callers that assemble
// NDJSON by hand.
type Records []Record

// AppendRecordsJSON appends the array rendered exactly as the generic
// encoder would ({"lat":…,"lon":…,"ts":…} objects), in a single buffer
// pass with no intermediate allocations. It errors on NaN/Inf like the
// generic encoder.
func AppendRecordsJSON(b []byte, rs []Record) ([]byte, error) {
	if rs == nil {
		return append(b, "null"...), nil
	}
	b = append(b, '[')
	var err error
	for i, r := range rs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"lat":`...)
		if b, err = appendJSONFloat(b, r.Lat); err != nil {
			return nil, err
		}
		b = append(b, `,"lon":`...)
		if b, err = appendJSONFloat(b, r.Lon); err != nil {
			return nil, err
		}
		b = append(b, `,"ts":`...)
		b = strconv.AppendInt(b, r.TS, 10)
		b = append(b, '}')
	}
	return append(b, ']'), nil
}

// UnmarshalJSON parses a canonical record array in one pass, deferring
// to the generic decoder (and its merge-into-existing-elements
// semantics, which the fast path mirrors) on anything non-canonical.
func (rs *Records) UnmarshalJSON(data []byte) error {
	if out, ok := parseCanonicalRecords(data, *rs); ok {
		*rs = out
		return nil
	}
	return json.Unmarshal(data, (*[]Record)(rs))
}

// ScanRecords parses a canonical record array at the start of data
// (leading whitespace allowed) and returns the records plus the number
// of bytes consumed — the building block for hand-written parsers of
// larger wire shapes (the batch upload line). ok=false means the input
// is not canonical and the caller must fall back to the generic
// decoder; nothing is consumed.
func ScanRecords(data []byte) (recs Records, n int, ok bool) {
	p := &recParser{data: data}
	p.skipWS()
	if !p.eat('[') {
		return nil, 0, false
	}
	out := Records{}
	p.skipWS()
	if p.eat(']') {
		return out, p.i, true
	}
	for {
		rec, recOK := p.parseRecord(Record{})
		if !recOK {
			return nil, 0, false
		}
		out = append(out, rec)
		p.skipWS()
		switch {
		case p.eat(','):
			p.skipWS()
		case p.eat(']'):
			return out, p.i, true
		default:
			return nil, 0, false
		}
	}
}

// parseCanonicalRecords parses `[ {record} , ... ]`. existing supplies
// the base elements for the stdlib's merge semantics when decoding into
// a pre-populated slice.
func parseCanonicalRecords(data []byte, existing []Record) (Records, bool) {
	p := &recParser{data: data}
	p.skipWS()
	if !p.eat('[') {
		return nil, false
	}
	var out Records
	p.skipWS()
	if p.eat(']') {
		p.skipWS()
		return Records{}, p.done()
	}
	for {
		var base Record
		if len(out) < len(existing) {
			base = existing[len(out)]
		}
		rec, ok := p.parseRecord(base)
		if !ok {
			return nil, false
		}
		out = append(out, rec)
		p.skipWS()
		switch {
		case p.eat(','):
			p.skipWS()
		case p.eat(']'):
			p.skipWS()
			return out, p.done()
		default:
			return nil, false
		}
	}
}

// (Record deliberately has no MarshalJSON: a per-element method forces
// the encoder through an interface call plus a compact pass per record,
// which benchmarks slower than the cached reflective struct encoder.
// Encoding always goes through that generic encoder; callers assembling
// NDJSON by hand use AppendRecordsJSON, which emits identical bytes.)

// recordAlias decodes like Record but without the custom unmarshaller,
// for the fallback path.
type recordAlias struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	TS  int64   `json:"ts"`
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Record) UnmarshalJSON(data []byte) error {
	p := &recParser{data: data}
	p.skipWS()
	if rec, ok := p.parseRecord(*r); ok {
		p.skipWS()
		if p.done() {
			*r = rec
			return nil
		}
	}
	a := recordAlias{Lat: r.Lat, Lon: r.Lon, TS: r.TS}
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*r = Record{Lat: a.Lat, Lon: a.Lon, TS: a.TS}
	return nil
}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest representation, 'f' form in the human range, 'e' form with a
// trimmed exponent outside it.
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, errors.New("trace: unsupported float value (NaN or Inf) in record")
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim the leading zero of two-digit exponents ("2e-09" ->
		// "2e-9"), as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

// recParser is the cursor of the canonical fast path.
type recParser struct {
	data []byte
	i    int
}

func (p *recParser) skipWS() {
	for p.i < len(p.data) {
		switch p.data[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *recParser) eat(c byte) bool {
	if p.i < len(p.data) && p.data[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *recParser) done() bool { return p.i == len(p.data) }

// parseRecord parses one canonical record object: exact-case
// "lat"/"lon"/"ts" keys (any order, duplicates last-wins like the
// stdlib) with plain number values, starting from base (the stdlib
// merges object fields into the existing value). ok=false defers to the
// generic decoder.
func (p *recParser) parseRecord(base Record) (Record, bool) {
	rec := base
	p.skipWS()
	if !p.eat('{') {
		return rec, false
	}
	p.skipWS()
	if p.eat('}') {
		return rec, true
	}
	for {
		p.skipWS()
		// Key: a short, escape-free string.
		if !p.eat('"') {
			return rec, false
		}
		start := p.i
		for p.i < len(p.data) && p.data[p.i] != '"' {
			if p.data[p.i] == '\\' {
				return rec, false
			}
			p.i++
		}
		if p.i >= len(p.data) {
			return rec, false
		}
		key := p.data[start:p.i]
		p.i++
		p.skipWS()
		if !p.eat(':') {
			return rec, false
		}
		p.skipWS()
		// Value: a bare JSON number token.
		start = p.i
	scan:
		for p.i < len(p.data) {
			switch c := p.data[p.i]; {
			case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
				p.i++
			default:
				break scan
			}
		}
		token := p.data[start:p.i]
		if !isJSONNumber(token) {
			// Not a valid RFC 8259 number (strconv is laxer: it accepts
			// "+1", "05", ".5", hex floats); let the generic decoder
			// produce its exact error.
			return rec, false
		}
		switch {
		case bytes.Equal(key, keyLat), bytes.Equal(key, keyLon):
			f, err := strconv.ParseFloat(string(token), 64)
			if err != nil {
				return rec, false
			}
			if key[1] == 'a' {
				rec.Lat = f
			} else {
				rec.Lon = f
			}
		case bytes.Equal(key, keyTS):
			ts, err := strconv.ParseInt(string(token), 10, 64)
			if err != nil {
				return rec, false
			}
			rec.TS = ts
		default:
			return rec, false
		}
		p.skipWS()
		switch {
		case p.eat(','):
		case p.eat('}'):
			return rec, true
		default:
			return rec, false
		}
	}
}

var (
	keyLat = []byte("lat")
	keyLon = []byte("lon")
	keyTS  = []byte("ts")
)

// isJSONNumber reports whether the token matches the RFC 8259 number
// grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
func isJSONNumber(tok []byte) bool {
	i, n := 0, len(tok)
	if i < n && tok[i] == '-' {
		i++
	}
	switch {
	case i < n && tok[i] == '0':
		i++
	case i < n && tok[i] >= '1' && tok[i] <= '9':
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < n && tok[i] == '.' {
		i++
		if i >= n || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	if i < n && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		if i < n && (tok[i] == '+' || tok[i] == '-') {
			i++
		}
		if i >= n || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	return i == n
}
