package trace

import (
	"testing"
	"time"

	"mood/internal/geo"
)

var lyon = geo.Point{Lat: 45.7640, Lon: 4.8357}

// lineTrace builds a trace of n records, one per stepSec seconds,
// moving east 10 m per step.
func lineTrace(user string, n int, start int64, stepSec int64) Trace {
	rs := make([]Record, n)
	for i := 0; i < n; i++ {
		p := geo.Offset(lyon, float64(i)*10, 0)
		rs[i] = At(p, start+int64(i)*stepSec)
	}
	return Trace{User: user, Records: rs}
}

func TestNewSortsRecords(t *testing.T) {
	rs := []Record{
		At(lyon, 300),
		At(lyon, 100),
		At(lyon, 200),
	}
	tr := New("u", rs)
	if !tr.Sorted() {
		t.Fatal("New must sort records")
	}
	if tr.Start() != 100 || tr.End() != 300 {
		t.Fatalf("start/end = %v/%v", tr.Start(), tr.End())
	}
	// Caller's slice must be untouched.
	if rs[0].TS != 300 {
		t.Fatal("New mutated the caller's slice")
	}
}

func TestEmptyTraceAccessors(t *testing.T) {
	var tr Trace
	if !tr.Empty() || tr.Len() != 0 {
		t.Fatal("zero trace should be empty")
	}
	if tr.Start() != 0 || tr.End() != 0 || tr.Duration() != 0 {
		t.Fatal("empty trace accessors should be zero")
	}
	if tr.PathLength() != 0 {
		t.Fatal("empty path length")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("empty trace must validate: %v", err)
	}
}

func TestDuration(t *testing.T) {
	tr := lineTrace("u", 11, 1000, 60)
	if got := tr.Duration(); got != 10*time.Minute {
		t.Fatalf("Duration = %v, want 10m", got)
	}
}

func TestWindow(t *testing.T) {
	tr := lineTrace("u", 10, 0, 10) // ts 0..90
	w := tr.Window(20, 50)          // ts 20,30,40
	if w.Len() != 3 {
		t.Fatalf("window len = %d, want 3", w.Len())
	}
	if w.Start() != 20 || w.End() != 40 {
		t.Fatalf("window span = [%d,%d]", w.Start(), w.End())
	}
	// Window is a copy: mutating it must not touch the original.
	w.Records[0].TS = 999
	if tr.Records[2].TS != 20 {
		t.Fatal("Window shares storage with the source trace")
	}
}

func TestWindowEdges(t *testing.T) {
	tr := lineTrace("u", 5, 100, 10) // 100..140
	if w := tr.Window(0, 100); !w.Empty() {
		t.Fatal("window before trace should be empty")
	}
	if w := tr.Window(141, 1000); !w.Empty() {
		t.Fatal("window after trace should be empty")
	}
	if w := tr.Window(100, 141); w.Len() != 5 {
		t.Fatal("full window should contain all records")
	}
}

func TestSplitAtPreservesRecords(t *testing.T) {
	f := func(n uint8, cutFrac float64) bool {
		tr := lineTrace("u", int(n%50)+2, 0, 30)
		cut := int64(float64(tr.End()) * cutFrac)
		b, a := tr.SplitAt(cut)
		if b.Len()+a.Len() != tr.Len() {
			return false
		}
		for _, r := range b.Records {
			if r.TS >= cut {
				return false
			}
		}
		for _, r := range a.Records {
			if r.TS < cut {
				return false
			}
		}
		return true
	}
	for i := 0; i < 200; i++ {
		if !f(uint8(i), float64(i%100)/100) {
			t.Fatalf("SplitAt invariant violated at i=%d", i)
		}
	}
}

func TestSplitHalfInvariants(t *testing.T) {
	tr := lineTrace("u", 101, 0, 60)
	a, b := tr.SplitHalf()
	if a.Len()+b.Len() != tr.Len() {
		t.Fatalf("record count changed: %d + %d != %d", a.Len(), b.Len(), tr.Len())
	}
	if a.Empty() || b.Empty() {
		t.Fatal("both halves should be non-empty for a long trace")
	}
	if a.End() >= b.Start() {
		t.Fatal("halves must not overlap in time")
	}
	// Time spans should be roughly balanced.
	if a.Duration() < tr.Duration()/4 || b.Duration() < tr.Duration()/4 {
		t.Fatalf("unbalanced halves: %v vs %v", a.Duration(), b.Duration())
	}
}

func TestSplitHalfDegenerateTimestamps(t *testing.T) {
	// All records share one timestamp: the fallback must still split by
	// count so recursion terminates.
	rs := make([]Record, 10)
	for i := range rs {
		rs[i] = At(geo.Offset(lyon, float64(i), 0), 500)
	}
	tr := Trace{User: "u", Records: rs}
	a, b := tr.SplitHalf()
	if a.Len() != 5 || b.Len() != 5 {
		t.Fatalf("degenerate split = %d/%d, want 5/5", a.Len(), b.Len())
	}
}

func TestSplitHalfTiny(t *testing.T) {
	one := lineTrace("u", 1, 0, 60)
	a, b := one.SplitHalf()
	if a.Len() != 1 || !b.Empty() {
		t.Fatalf("single-record split = %d/%d", a.Len(), b.Len())
	}
}

func TestChunks(t *testing.T) {
	// 48 hours of data at 1 sample/hour -> two 24h chunks + boundary.
	tr := lineTrace("u", 49, 0, 3600)
	chunks := tr.Chunks(24 * time.Hour)
	if len(chunks) != 3 { // [0,24h) [24h,48h) [48h,48h]
		t.Fatalf("len(chunks) = %d, want 3", len(chunks))
	}
	var total int
	for i, c := range chunks {
		if c.Empty() {
			t.Fatalf("chunk %d empty", i)
		}
		if c.Duration() > 24*time.Hour {
			t.Fatalf("chunk %d longer than 24h: %v", i, c.Duration())
		}
		total += c.Len()
	}
	if total != tr.Len() {
		t.Fatalf("chunking lost records: %d != %d", total, tr.Len())
	}
}

func TestChunksNonPositiveDuration(t *testing.T) {
	tr := lineTrace("u", 5, 0, 60)
	chunks := tr.Chunks(0)
	if len(chunks) != 1 || chunks[0].Len() != 5 {
		t.Fatal("non-positive duration must return the whole trace")
	}
}

func TestMerge(t *testing.T) {
	a := lineTrace("u", 3, 0, 10)
	b := lineTrace("u", 3, 5, 10)
	m := Merge(a, b)
	if m.Len() != 6 {
		t.Fatalf("merge len = %d", m.Len())
	}
	if !m.Sorted() {
		t.Fatal("merge must sort")
	}
	if m.User != "u" {
		t.Fatalf("merge user = %q", m.User)
	}
}

func TestAppendKeepsSorted(t *testing.T) {
	tr := lineTrace("u", 3, 100, 10)
	tr2 := tr.Append(At(lyon, 50), At(lyon, 115))
	if !tr2.Sorted() || tr2.Len() != 5 {
		t.Fatalf("append broke ordering: %v", tr2.Records)
	}
	if tr.Len() != 3 {
		t.Fatal("Append must not mutate the receiver")
	}
}

func TestPathLength(t *testing.T) {
	tr := lineTrace("u", 11, 0, 60) // 10 hops of 10 m
	got := tr.PathLength()
	if got < 95 || got > 105 {
		t.Fatalf("PathLength = %v, want ~100", got)
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	bad := Trace{User: "u", Records: []Record{
		{Lat: 95, Lon: 0, TS: 1},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid latitude must fail validation")
	}
	unsorted := Trace{User: "u", Records: []Record{
		At(lyon, 10), At(lyon, 5),
	}}
	if err := unsorted.Validate(); err == nil {
		t.Fatal("unsorted trace must fail validation")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := lineTrace("u", 3, 0, 10)
	c := tr.Clone()
	c.Records[0].Lat = 0
	if tr.Records[0].Lat == 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestRecordTime(t *testing.T) {
	r := At(lyon, 1700000000)
	if got := r.Time().Unix(); got != 1700000000 {
		t.Fatalf("Time().Unix() = %d", got)
	}
	if r.Time().Location() != time.UTC {
		t.Fatal("Time must be UTC")
	}
}

func TestDownsample(t *testing.T) {
	tr := lineTrace("u", 100, 0, 10) // one record / 10 s
	ds := tr.Downsample(time.Minute)
	if ds.Len() >= tr.Len()/5+5 || ds.Len() < tr.Len()/6-1 {
		t.Fatalf("downsampled to %d records from %d", ds.Len(), tr.Len())
	}
	// One record per minute bucket.
	seen := map[int64]bool{}
	for _, r := range ds.Records {
		b := r.TS / 60
		if seen[b] {
			t.Fatal("two records in the same bucket")
		}
		seen[b] = true
	}
	// Zero period and empty trace are no-ops.
	if tr.Downsample(0).Len() != tr.Len() {
		t.Fatal("zero period must keep everything")
	}
	if got := (Trace{}).Downsample(time.Minute); !got.Empty() {
		t.Fatal("empty trace must stay empty")
	}
}

func TestThin(t *testing.T) {
	tr := lineTrace("u", 10, 0, 10)
	th := tr.Thin(3)
	if th.Len() != 4 { // indices 0,3,6,9
		t.Fatalf("thinned to %d, want 4", th.Len())
	}
	if th.Records[1].TS != tr.Records[3].TS {
		t.Fatal("wrong records kept")
	}
	if tr.Thin(1).Len() != tr.Len() || tr.Thin(0).Len() != tr.Len() {
		t.Fatal("k<=1 must keep everything")
	}
}

func TestDatasetDownsample(t *testing.T) {
	d := sampleDataset()
	ds := d.Downsample(2 * time.Minute)
	if ds.NumRecords() >= d.NumRecords() {
		t.Fatalf("dataset downsample did not shrink: %d >= %d", ds.NumRecords(), d.NumRecords())
	}
	if ds.NumUsers() != d.NumUsers() {
		t.Fatal("users lost during downsampling")
	}
}
