package trace

import (
	"time"

	"mood/internal/geo"
)

// Splitter cuts a trace into sub-traces. The paper's fine-grained stage
// uses fixed time slices; §6 names inter-POI and time-gap splitting as
// future directions, which we implement as alternatives and compare in
// the ablation benchmarks.
type Splitter interface {
	// Name identifies the strategy in reports.
	Name() string
	// Split cuts t into non-empty sub-traces covering all records.
	Split(t Trace) []Trace
}

// HalfSplitter splits a trace at its temporal midpoint (the paper's
// Split_in_half, Algorithm 1 line 28).
type HalfSplitter struct{}

// Name implements Splitter.
func (HalfSplitter) Name() string { return "half" }

// Split implements Splitter.
func (HalfSplitter) Split(t Trace) []Trace {
	a, b := t.SplitHalf()
	out := make([]Trace, 0, 2)
	if !a.Empty() {
		out = append(out, a)
	}
	if !b.Empty() {
		out = append(out, b)
	}
	return out
}

// FixedDurationSplitter cuts a trace into chunks of at most D duration
// (the paper's "fixed time slices", e.g. 24 h crowd-sensing uploads).
type FixedDurationSplitter struct {
	D time.Duration
}

// Name implements Splitter.
func (s FixedDurationSplitter) Name() string { return "fixed-" + s.D.String() }

// Split implements Splitter.
func (s FixedDurationSplitter) Split(t Trace) []Trace { return t.Chunks(s.D) }

// GapSplitter cuts a trace wherever two consecutive records are more
// than Gap apart in time — the natural pauses in mobility data
// (paper §6, "time gaps in mobility traces").
type GapSplitter struct {
	Gap time.Duration
}

// Name implements Splitter.
func (s GapSplitter) Name() string { return "gap-" + s.Gap.String() }

// Split implements Splitter.
func (s GapSplitter) Split(t Trace) []Trace {
	if t.Empty() {
		return nil
	}
	gapSec := int64(s.Gap / time.Second)
	if gapSec <= 0 {
		return []Trace{t.Clone()}
	}
	var out []Trace
	start := 0
	for i := 1; i < t.Len(); i++ {
		if t.Records[i].TS-t.Records[i-1].TS > gapSec {
			out = append(out, subTrace(t, start, i))
			start = i
		}
	}
	out = append(out, subTrace(t, start, t.Len()))
	return out
}

// DistanceSplitter cuts a trace every time the cumulative travelled
// distance exceeds D meters (the paper's "fixed distance slices").
type DistanceSplitter struct {
	D float64
}

// Name implements Splitter.
func (s DistanceSplitter) Name() string { return "distance" }

// Split implements Splitter.
func (s DistanceSplitter) Split(t Trace) []Trace {
	if t.Empty() {
		return nil
	}
	if s.D <= 0 {
		return []Trace{t.Clone()}
	}
	var out []Trace
	start := 0
	var acc float64
	for i := 1; i < t.Len(); i++ {
		acc += recordDistance(t.Records[i-1], t.Records[i])
		if acc >= s.D {
			out = append(out, subTrace(t, start, i))
			start = i
			acc = 0
		}
	}
	if start < t.Len() {
		out = append(out, subTrace(t, start, t.Len()))
	}
	return out
}

func subTrace(t Trace, lo, hi int) Trace {
	rs := make([]Record, hi-lo)
	copy(rs, t.Records[lo:hi])
	return Trace{User: t.User, Records: rs}
}

func recordDistance(a, b Record) float64 {
	return geo.FastDistance(a.Point(), b.Point())
}
