package trace

import (
	"strings"
	"testing"
)

func sampleDataset() Dataset {
	return NewDataset("d", []Trace{
		lineTrace("u3", 10, 0, 60),
		lineTrace("u1", 20, 0, 60),
		lineTrace("u2", 5, 600, 60),
	})
}

func TestNewDatasetSortsAndMerges(t *testing.T) {
	d := sampleDataset()
	users := d.Users()
	if len(users) != 3 || users[0] != "u1" || users[2] != "u3" {
		t.Fatalf("users = %v", users)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}

	// Duplicate user IDs must merge.
	dup := NewDataset("d", []Trace{
		lineTrace("u", 3, 0, 10),
		lineTrace("u", 3, 100, 10),
	})
	if dup.NumUsers() != 1 {
		t.Fatalf("NumUsers = %d, want 1", dup.NumUsers())
	}
	tr, ok := dup.Trace("u")
	if !ok || tr.Len() != 6 {
		t.Fatalf("merged trace len = %d, want 6", tr.Len())
	}
	if !tr.Sorted() {
		t.Fatal("merged trace must be sorted")
	}
}

func TestDatasetCounts(t *testing.T) {
	d := sampleDataset()
	if d.NumUsers() != 3 {
		t.Fatalf("NumUsers = %d", d.NumUsers())
	}
	if d.NumRecords() != 35 {
		t.Fatalf("NumRecords = %d, want 35", d.NumRecords())
	}
}

func TestDatasetTraceLookup(t *testing.T) {
	d := sampleDataset()
	if _, ok := d.Trace("u2"); !ok {
		t.Fatal("u2 should exist")
	}
	if _, ok := d.Trace("nobody"); ok {
		t.Fatal("nobody should not exist")
	}
}

func TestDatasetFilterMap(t *testing.T) {
	d := sampleDataset()
	big := d.Filter(func(tr Trace) bool { return tr.Len() >= 10 })
	if big.NumUsers() != 2 {
		t.Fatalf("filter kept %d users", big.NumUsers())
	}
	// Map that empties a trace drops the user.
	emptied := d.Map(func(tr Trace) Trace {
		if tr.User == "u1" {
			return Trace{User: tr.User}
		}
		return tr
	})
	if emptied.NumUsers() != 2 {
		t.Fatalf("map kept %d users, want 2", emptied.NumUsers())
	}
}

func TestDatasetTimeSpanAndWindow(t *testing.T) {
	d := sampleDataset()
	start, end := d.TimeSpan()
	if start != 0 {
		t.Fatalf("start = %d", start)
	}
	if end != 0+19*60 {
		t.Fatalf("end = %d, want 1140", end)
	}
	w := d.Window(0, 300)
	for _, tr := range w.Traces {
		if tr.End() >= 300 {
			t.Fatal("window leaked records")
		}
	}
}

func TestSplitTrainTest(t *testing.T) {
	d := sampleDataset()
	train, test := d.SplitTrainTest(0.5, 1)
	if train.NumUsers() == 0 || test.NumUsers() == 0 {
		t.Fatal("both splits should have users")
	}
	// No record may appear on the wrong side of the cut.
	_, end := d.TimeSpan()
	start, _ := d.TimeSpan()
	cut := start + (end-start)/2
	for _, tr := range train.Traces {
		if tr.End() >= cut {
			t.Fatal("train contains post-cut records")
		}
	}
	for _, tr := range test.Traces {
		if tr.Start() < cut {
			t.Fatal("test contains pre-cut records")
		}
	}
	// Users present in both splits must be identical sets.
	tu := strings.Join(train.Users(), ",")
	su := strings.Join(test.Users(), ",")
	if tu != su {
		t.Fatalf("train users %v != test users %v", tu, su)
	}
}

func TestSplitTrainTestActivityThreshold(t *testing.T) {
	// u2 has records only in the second half, so a threshold of 1 must
	// drop it from both splits.
	d := NewDataset("d", []Trace{
		lineTrace("u1", 20, 0, 60),   // spans 0..1140
		lineTrace("u2", 5, 1000, 10), // only late records
	})
	train, test := d.SplitTrainTest(0.5, 1)
	if train.NumUsers() != 1 || test.NumUsers() != 1 {
		t.Fatalf("expected only u1 to survive, got %v / %v", train.Users(), test.Users())
	}
}

func TestIDRenewer(t *testing.T) {
	r := NewIDRenewer("mdc")
	a := r.Renew(lineTrace("u9", 2, 0, 1))
	b := r.Renew(lineTrace("u9", 2, 0, 1))
	if a.User == b.User {
		t.Fatal("pseudonyms must be unique")
	}
	if !strings.HasPrefix(a.User, "mdc-") {
		t.Fatalf("pseudonym = %q", a.User)
	}
	all := r.RenewAll([]Trace{lineTrace("x", 1, 0, 1), lineTrace("y", 1, 0, 1)})
	if all[0].User == all[1].User {
		t.Fatal("RenewAll produced duplicate pseudonyms")
	}
}

func TestDatasetValidateCatchesDisorder(t *testing.T) {
	d := Dataset{Name: "broken", Traces: []Trace{
		lineTrace("b", 2, 0, 1),
		lineTrace("a", 2, 0, 1),
	}}
	if err := d.Validate(); err == nil {
		t.Fatal("unsorted dataset must fail validation")
	}
}
