package mood

import (
	"fmt"
	"io"

	"mood/internal/synth"
	"mood/internal/traceio"
)

// GenerateDataset produces one of the synthetic stand-ins for the
// paper's datasets. preset is "mdc", "privamov", "geolife" or
// "cabspotting"; scale is "tiny", "bench" or "paper" (Table 1 user
// counts). Generation is deterministic in seed.
func GenerateDataset(preset, scale string, seed uint64) (Dataset, error) {
	sc, err := synth.ParseScale(scale)
	if err != nil {
		return Dataset{}, fmt.Errorf("mood: %w", err)
	}
	cfg, err := synth.PresetByName(preset, sc, seed)
	if err != nil {
		return Dataset{}, fmt.Errorf("mood: %w", err)
	}
	d, err := synth.Generate(cfg)
	if err != nil {
		return Dataset{}, fmt.Errorf("mood: %w", err)
	}
	return d, nil
}

// DatasetPresets lists the available preset names in Table 1 order.
func DatasetPresets() []string {
	cfgs := synth.Presets(synth.ScaleBench, 0)
	out := make([]string, len(cfgs))
	for i, c := range cfgs {
		out[i] = c.Name
	}
	return out
}

// SplitTrainTest splits every user's trace chronologically at frac of
// the dataset's time span, keeping users with at least minRecords
// records on both sides — the paper's 15-day background / 15-day test
// protocol.
func SplitTrainTest(d Dataset, frac float64, minRecords int) (train, test Dataset) {
	return d.SplitTrainTest(frac, minRecords)
}

// ReadCSV reads a dataset in the "user,lat,lon,ts" CSV format.
func ReadCSV(r io.Reader, name string) (Dataset, error) { return traceio.ReadCSV(r, name) }

// WriteCSV writes a dataset in the "user,lat,lon,ts" CSV format.
func WriteCSV(w io.Writer, d Dataset) error { return traceio.WriteCSV(w, d) }

// LoadCSVFile reads a CSV dataset from a file.
func LoadCSVFile(path, name string) (Dataset, error) { return traceio.LoadCSVFile(path, name) }

// SaveCSVFile writes a CSV dataset to a file.
func SaveCSVFile(path string, d Dataset) error { return traceio.SaveCSVFile(path, d) }
