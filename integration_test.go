package mood_test

import (
	"strings"
	"testing"
	"time"

	"mood"
)

// TestIntegrationFullReleaseWorkflow drives the complete data-release
// path on two different synthetic cities: generate, split, protect with
// MooD, publish, and audit with ground truth.
func TestIntegrationFullReleaseWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, preset := range []string{"mdc", "cabspotting"} {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			t.Parallel()
			d, err := mood.GenerateDataset(preset, "tiny", 500)
			if err != nil {
				t.Fatal(err)
			}
			train, test := mood.SplitTrainTest(d, 0.5, 20)
			p, err := mood.NewPipeline(train.Traces, mood.WithSeed(500))
			if err != nil {
				t.Fatal(err)
			}
			results, err := p.ProtectDataset(test)
			if err != nil {
				t.Fatal(err)
			}

			// Audit: no piece may be linked back to its true owner.
			for _, r := range results {
				for _, piece := range r.Pieces {
					if hit, name := p.ReIdentifies(piece.Trace.WithUser(""), r.User); hit {
						t.Errorf("%s: piece of %s re-identified by %s", preset, r.User, name)
					}
				}
			}

			// Accounting must balance.
			var covered, lost, total int
			for _, r := range results {
				for _, piece := range r.Pieces {
					covered += piece.SourceRecords
				}
				lost += r.LostRecords
				total += r.TotalRecords
			}
			if covered+lost != total {
				t.Errorf("%s: covered %d + lost %d != total %d", preset, covered, lost, total)
			}
			if total != test.NumRecords() {
				t.Errorf("%s: total %d != dataset %d", preset, total, test.NumRecords())
			}

			// The headline guarantee: near-zero loss.
			if loss := p.DataLoss(results); loss > 0.05 {
				t.Errorf("%s: MooD loss %.2f%%", preset, 100*loss)
			}

			// Classification covers everyone.
			c := mood.Classify(results)
			if c.Total() != test.NumUsers() {
				t.Errorf("%s: classified %d of %d", preset, c.Total(), test.NumUsers())
			}
		})
	}
}

// TestIntegrationDeterministicAcrossRuns rebuilds the whole pipeline
// twice and requires byte-identical published output.
func TestIntegrationDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	build := func() mood.Dataset {
		d, err := mood.GenerateDataset("privamov", "tiny", 7)
		if err != nil {
			t.Fatal(err)
		}
		train, test := mood.SplitTrainTest(d, 0.5, 20)
		p, err := mood.NewPipeline(train.Traces, mood.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		results, err := p.ProtectDataset(test)
		if err != nil {
			t.Fatal(err)
		}
		return p.Publish("out", results)
	}
	a := build()
	b := build()
	if a.NumRecords() != b.NumRecords() || a.NumUsers() != b.NumUsers() {
		t.Fatalf("runs differ structurally: %v vs %v", a, b)
	}
	for i := range a.Traces {
		if a.Traces[i].User != b.Traces[i].User {
			t.Fatalf("trace %d user differs", i)
		}
		for j := range a.Traces[i].Records {
			if a.Traces[i].Records[j] != b.Traces[i].Records[j] {
				t.Fatalf("trace %d record %d differs", i, j)
			}
		}
	}
}

// TestIntegrationKAnonPortfolio runs the pipeline with the k-anonymity
// extension in the portfolio.
func TestIntegrationKAnonPortfolio(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	d, err := mood.GenerateDataset("mdc", "tiny", 9)
	if err != nil {
		t.Fatal(err)
	}
	train, test := mood.SplitTrainTest(d, 0.5, 20)
	p, err := mood.NewPipeline(train.Traces, mood.WithSeed(9), mood.WithKAnonymity(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Mechanisms()); got != 4 {
		t.Fatalf("portfolio = %d mechanisms, want 4", got)
	}
	// With 4 mechanisms the composition space grows to Σ 4!/(4-i)! = 64.
	results, err := p.ProtectDataset(test)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		for _, piece := range r.Pieces {
			if hit, name := p.ReIdentifies(piece.Trace.WithUser(""), r.User); hit {
				t.Errorf("piece of %s re-identified by %s (mech %s)", r.User, name, piece.Mechanism)
			}
		}
	}
}

// TestIntegrationGreedyMatchesBruteProtection verifies the §6 heuristic
// protects the same record volume end to end.
func TestIntegrationGreedyMatchesBruteProtection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	d, err := mood.GenerateDataset("geolife", "tiny", 13)
	if err != nil {
		t.Fatal(err)
	}
	train, test := mood.SplitTrainTest(d, 0.5, 20)

	brute, err := mood.NewPipeline(train.Traces, mood.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := mood.NewPipeline(train.Traces, mood.WithSeed(13), mood.WithGreedySearch())
	if err != nil {
		t.Fatal(err)
	}
	br, err := brute.ProtectDataset(test)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := greedy.ProtectDataset(test)
	if err != nil {
		t.Fatal(err)
	}
	if bl, gl := brute.DataLoss(br), greedy.DataLoss(gr); gl > bl+1e-9 {
		t.Fatalf("greedy loss %.3f > brute %.3f", gl, bl)
	}
}

// TestIntegrationChunkOption checks that a custom chunk duration
// propagates into the fine-grained stage.
func TestIntegrationChunkOption(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	d, err := mood.GenerateDataset("mdc", "tiny", 17)
	if err != nil {
		t.Fatal(err)
	}
	train, test := mood.SplitTrainTest(d, 0.5, 20)
	p, err := mood.NewPipeline(train.Traces,
		mood.WithSeed(17), mood.WithChunk(12*time.Hour), mood.WithDelta(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range test.Traces {
		res, err := p.Protect(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !res.UsedFineGrained {
			continue
		}
		for _, piece := range res.Pieces {
			if piece.Trace.Duration() > 12*time.Hour {
				t.Fatalf("piece longer than the 12h chunk: %v", piece.Trace.Duration())
			}
			if !strings.HasPrefix(piece.Trace.User, "anon-") {
				t.Fatalf("fine-grained piece not pseudonymised: %q", piece.Trace.User)
			}
		}
	}
}
