package main

import (
	"flag"
	"fmt"
	"os"

	"mood"
	"mood/internal/service"
	"mood/internal/trace"
	"mood/internal/traceio"
)

// The server-facing subcommands: moodctl is also the operator's v2
// client, exercising the streaming batch upload and the paginated
// dataset exactly as a production integration would.

// uploadCmd streams a CSV dataset to POST /v2/traces.
func uploadCmd(args []string) error {
	fs := flag.NewFlagSet("moodctl upload", flag.ContinueOnError)
	server := fs.String("server", "", "base URL of the moodserver (required)")
	in := fs.String("in", "", "CSV file with the raw traces to upload (required)")
	token := fs.String("token", "", "bearer token")
	batch := fs.Int("batch", 256, "chunks per batch request")
	keyPrefix := fs.String("key-prefix", "", "idempotency key prefix; keys are <prefix>-<index> (empty disables keying)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" || *in == "" {
		return fmt.Errorf("-server and -in are required")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be at least 1")
	}

	ds, err := mood.LoadCSVFile(*in, "upload")
	if err != nil {
		return err
	}
	client := service.NewClient(*server).SetAuthToken(*token)

	// One chunk per (user, day), batched: the participant-side shape of
	// the paper's crowd-sensing scenario, fed in bulk.
	var chunks []service.BatchChunk
	for _, tr := range ds.Traces {
		for _, day := range tr.Chunks(trace.Day) {
			c := service.BatchChunk{User: day.User, Records: day.Records}
			if *keyPrefix != "" {
				c.Key = fmt.Sprintf("%s-%d", *keyPrefix, len(chunks))
			}
			chunks = append(chunks, c)
		}
	}

	var accepted, rejected, pieces, failed int
	for start := 0; start < len(chunks); start += *batch {
		end := min(start+*batch, len(chunks))
		err := client.UploadBatchStream(chunks[start:end], func(res service.BatchResult) error {
			switch {
			case res.Status == 200 && res.Result != nil:
				accepted += res.Result.Accepted
				rejected += res.Result.Rejected
				pieces += res.Result.Pieces
			case res.Status == 202:
				// Async chunks are not produced by this command; count
				// defensively so a server change is visible.
				fallthrough
			default:
				failed++
				fmt.Fprintf(os.Stderr, "moodctl: chunk %d (%s): %d %s %s\n",
					start+res.Index, res.User, res.Status, res.Code, res.Error)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("batch %d..%d: %w", start, end, err)
		}
	}
	fmt.Printf("uploaded %d chunks: %d records published, %d erased, %d fragments, %d failed chunks\n",
		len(chunks), accepted, rejected, pieces, failed)
	return nil
}

// datasetCmd pages through GET /v2/dataset and writes CSV.
func datasetCmd(args []string) error {
	fs := flag.NewFlagSet("moodctl dataset", flag.ContinueOnError)
	server := fs.String("server", "", "base URL of the moodserver (required)")
	token := fs.String("token", "", "bearer token")
	out := fs.String("out", "", "output CSV path (default stdout)")
	user := fs.String("user", "", "filter: exact published pseudonym")
	from := fs.Int64("from", 0, "filter: time-range start, unix seconds")
	to := fs.Int64("to", 0, "filter: time-range end, unix seconds (half-open)")
	limit := fs.Int("limit", 500, "page size (1..1000)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("-server is required")
	}

	client := service.NewClient(*server).SetAuthToken(*token)
	q := service.DatasetQuery{Limit: *limit, User: *user, From: *from, To: *to}
	var traces []trace.Trace
	pages := 0
	for page, err := range client.DatasetPages(q) {
		if err != nil {
			return err
		}
		pages++
		traces = append(traces, page.Traces...)
	}
	ds := trace.Dataset{Name: "published", Traces: traces}

	w := os.Stdout
	if *out != "" {
		//mood:allow persistio -- the -out CSV export is a CLI artifact, not server state
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := traceio.WriteCSV(w, ds); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "moodctl: %d traces (%d records) in %d pages\n",
		ds.NumUsers(), ds.NumRecords(), pages)
	return nil
}
