package main

import (
	"path/filepath"
	"testing"

	"mood/internal/synth"
	"mood/internal/traceio"
)

// writeSplit generates a tiny dataset and writes background/raw CSVs.
func writeSplit(t *testing.T) (bg, raw string) {
	t.Helper()
	cfg := synth.PrivamovLike(synth.ScaleTiny, 21)
	cfg.NumUsers = 6
	cfg.Days = 6
	d := synth.MustGenerate(cfg)
	train, test := d.SplitTrainTest(0.5, 20)

	dir := t.TempDir()
	bg = filepath.Join(dir, "bg.csv")
	raw = filepath.Join(dir, "raw.csv")
	if err := traceio.SaveCSVFile(bg, train); err != nil {
		t.Fatal(err)
	}
	if err := traceio.SaveCSVFile(raw, test); err != nil {
		t.Fatal(err)
	}
	return bg, raw
}

func TestProtectThenAttackRoundTrip(t *testing.T) {
	bg, raw := writeSplit(t)
	out := filepath.Join(filepath.Dir(raw), "protected.csv")

	if err := run([]string{"protect", "-background", bg, "-in", raw, "-out", out, "-seed", "21"}); err != nil {
		t.Fatal(err)
	}
	protected, err := traceio.LoadCSVFile(out, "protected")
	if err != nil {
		t.Fatal(err)
	}
	if protected.NumRecords() == 0 {
		t.Fatal("protected dataset is empty")
	}

	if err := run([]string{"attack", "-background", bg, "-in", out}); err != nil {
		t.Fatal(err)
	}
}

func TestProtectGreedyFlag(t *testing.T) {
	bg, raw := writeSplit(t)
	out := filepath.Join(filepath.Dir(raw), "protected.csv")
	if err := run([]string{"protect", "-background", bg, "-in", raw, "-out", out, "-greedy"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUsageErrors(t *testing.T) {
	tests := [][]string{
		nil,
		{"frobnicate"},
		{"protect"},                        // missing flags
		{"attack", "-background", "x.csv"}, // missing -in
		{"protect", "-background", "/nonexistent.csv", "-in", "/nonexistent.csv"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
