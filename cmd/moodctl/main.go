// Command moodctl applies MooD protection to a CSV mobility dataset,
// reports what an attacker could still learn, and talks to a running
// moodserver over the /v2 wire protocol.
//
// Offline subcommands:
//
//	moodctl protect -background bg.csv -in raw.csv -out protected.csv [-seed 42]
//	    Train attacks on the background file, run MooD on the input
//	    dataset and write the protected, pseudonymised dataset.
//
//	moodctl attack -background bg.csv -in some.csv
//	    Train the three attacks on the background file and report how
//	    many traces of the input they re-identify.
//
// Server subcommands (v2 client):
//
//	moodctl upload -server URL -in raw.csv [-token T] [-batch 256] [-key-prefix p]
//	    Stream the CSV's traces to POST /v2/traces as NDJSON batches
//	    (one connection per batch, per-chunk results, optional
//	    per-chunk idempotency keys) and summarise the outcome.
//
//	moodctl dataset -server URL [-token T] [-out file.csv] [-user p] [-from ts] [-to ts] [-limit 500]
//	    Page through GET /v2/dataset with the cursor iterator and
//	    write the published dataset as CSV (stdout by default).
//
// CSV format: header "user,lat,lon,ts" with ts in Unix seconds.
package main

import (
	"flag"
	"fmt"
	"os"

	"mood"
	"mood/internal/attack"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "moodctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: moodctl <protect|attack|upload|dataset> [flags]")
	}
	switch args[0] {
	case "protect":
		return protect(args[1:])
	case "attack":
		return attackCmd(args[1:])
	case "upload":
		return uploadCmd(args[1:])
	case "dataset":
		return datasetCmd(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want protect, attack, upload or dataset)", args[0])
	}
}

func protect(args []string) error {
	fs := flag.NewFlagSet("moodctl protect", flag.ContinueOnError)
	background := fs.String("background", "", "CSV file with the attacker-side background knowledge")
	in := fs.String("in", "", "CSV file with the raw dataset to protect")
	out := fs.String("out", "protected.csv", "output CSV path")
	seed := fs.Uint64("seed", 42, "random seed")
	greedy := fs.Bool("greedy", false, "use the heuristic composition search")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *background == "" || *in == "" {
		return fmt.Errorf("-background and -in are required")
	}

	bg, err := mood.LoadCSVFile(*background, "background")
	if err != nil {
		return err
	}
	raw, err := mood.LoadCSVFile(*in, "raw")
	if err != nil {
		return err
	}

	opts := []mood.Option{mood.WithSeed(*seed)}
	if *greedy {
		opts = append(opts, mood.WithGreedySearch())
	}
	pipeline, err := mood.NewPipeline(bg.Traces, opts...)
	if err != nil {
		return err
	}
	results, err := pipeline.ProtectDataset(raw)
	if err != nil {
		return err
	}
	protected := pipeline.Publish("protected", results)
	if err := mood.SaveCSVFile(*out, protected); err != nil {
		return err
	}

	var orphans int
	for _, r := range results {
		if !r.FullyProtected() {
			orphans++
		}
	}
	fmt.Printf("protected %d users into %d published traces (%d records)\n",
		len(results), protected.NumUsers(), protected.NumRecords())
	fmt.Printf("data loss: %.2f%%, users with residual loss: %d\n",
		pipeline.DataLoss(results)*100, orphans)
	fmt.Printf("output: %s\n", *out)
	return nil
}

func attackCmd(args []string) error {
	fs := flag.NewFlagSet("moodctl attack", flag.ContinueOnError)
	background := fs.String("background", "", "CSV file with the attacker-side background knowledge")
	in := fs.String("in", "", "CSV file with the (protected or raw) dataset to attack")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *background == "" || *in == "" {
		return fmt.Errorf("-background and -in are required")
	}

	bg, err := mood.LoadCSVFile(*background, "background")
	if err != nil {
		return err
	}
	target, err := mood.LoadCSVFile(*in, "target")
	if err != nil {
		return err
	}

	atks := attack.Set{attack.NewAP(), attack.NewPOIAttack(), attack.NewPIT()}
	if err := attack.TrainAll(atks, bg.Traces); err != nil {
		return err
	}

	perAttack := make(map[string]int, len(atks))
	reidentified := 0
	for _, tr := range target.Traces {
		hitAny := false
		for _, a := range atks {
			v := a.Identify(tr)
			if v.OK && v.User == tr.User {
				perAttack[a.Name()]++
				hitAny = true
			}
		}
		if hitAny {
			reidentified++
		}
	}
	fmt.Printf("traces: %d, re-identified by at least one attack: %d (%.1f%%)\n",
		target.NumUsers(), reidentified,
		100*float64(reidentified)/float64(max(1, target.NumUsers())))
	for _, a := range atks {
		fmt.Printf("  %-4s %d\n", a.Name(), perAttack[a.Name()])
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
