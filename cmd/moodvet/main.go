// Command moodvet runs MooD's repo-specific static analyzers: the
// mechanical form of the disciplines earlier PRs established (see
// README.md, "Static analysis").
//
// Two modes share one binary:
//
//	go vet -vettool=$(pwd)/moodvet ./...   # vet protocol, used by CI
//	go run ./cmd/moodvet ./...             # standalone driver
//
// The vet mode analyzes exactly what go vet analyzes (including test
// files) with full type information from the build cache; the
// standalone mode shells out to `go list -test -deps -export` to get
// the same information without cmd/go orchestrating it.
//
// Exit status: 0 clean, non-zero when diagnostics were reported (2 in
// vet mode, matching unitchecker) or the analysis itself failed.
package main

import (
	"fmt"
	"os"

	"mood/internal/lint"
	"mood/internal/lint/analysis"
	"mood/internal/lint/load"
	"mood/internal/lint/vetdriver"
)

const modulePath = "mood"

func main() {
	args := os.Args[1:]
	if code := vetdriver.Main(modulePath, lint.Suite(), args, os.Stdout, os.Stderr); code >= 0 {
		os.Exit(code)
	}
	if len(args) == 0 || args[0] == "-h" || args[0] == "-help" || args[0] == "--help" {
		usage()
		os.Exit(2)
	}
	os.Exit(standalone(args))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: moodvet <packages>   (e.g. moodvet ./...)")
	fmt.Fprintln(os.Stderr, "   or: go vet -vettool=/path/to/moodvet <packages>")
	fmt.Fprintln(os.Stderr, "\nanalyzers:")
	for _, a := range lint.Suite() {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
	}
}

func standalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "moodvet:", err)
		return 1
	}
	targets, err := load.Load(wd, modulePath, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moodvet:", err)
		return 1
	}
	suite := lint.Suite()
	// Test variants (`pkg [pkg.test]`) re-analyze the non-test files of
	// their base package, so the same finding can surface twice; report
	// each position/message once.
	seen := map[string]bool{}
	n := 0
	for _, t := range targets {
		diags, err := analysis.Run(t, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "moodvet:", err)
			return 1
		}
		for _, d := range diags {
			line := d.String()
			if seen[line] {
				continue
			}
			seen[line] = true
			fmt.Fprintln(os.Stderr, line)
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "moodvet: %d diagnostic(s)\n", n)
		return 2
	}
	return 0
}
