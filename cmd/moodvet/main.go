// Command moodvet runs MooD's repo-specific static analyzers: the
// mechanical form of the disciplines earlier PRs established (see
// README.md, "Static analysis").
//
// Two modes share one binary:
//
//	go vet -vettool=$(pwd)/moodvet ./...   # vet protocol, used by CI
//	go run ./cmd/moodvet ./...             # standalone driver
//
// The vet mode analyzes exactly what go vet analyzes (including test
// files) with full type information from the build cache; the
// standalone mode shells out to `go list -test -deps -export` to get
// the same information without cmd/go orchestrating it.
//
// Exit status: 0 clean, non-zero when diagnostics were reported (2 in
// vet mode, matching unitchecker) or the analysis itself failed.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"mood/internal/lint"
	"mood/internal/lint/analysis"
	"mood/internal/lint/load"
	"mood/internal/lint/vetdriver"
)

const modulePath = "mood"

func main() {
	args := os.Args[1:]
	if code := vetdriver.Main(modulePath, lint.Suite(), args, os.Stdout, os.Stderr); code >= 0 {
		os.Exit(code)
	}
	asJSON := false
	if len(args) > 0 && args[0] == "-json" {
		asJSON = true
		args = args[1:]
	}
	if len(args) == 0 || args[0] == "-h" || args[0] == "-help" || args[0] == "--help" {
		usage()
		os.Exit(2)
	}
	os.Exit(standalone(args, asJSON))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: moodvet [-json] <packages>   (e.g. moodvet ./...)")
	fmt.Fprintln(os.Stderr, "   or: go vet -vettool=/path/to/moodvet <packages>")
	fmt.Fprintln(os.Stderr, "\n-json writes the findings to stdout as a deterministic JSON report")
	fmt.Fprintln(os.Stderr, "(sorted by file/line/column/analyzer) for CI artifacts.\n\nanalyzers:")
	for _, a := range lint.Suite() {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
	}
}

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json document: the analyzer roster pins what ran,
// the findings say what it found. Both are sorted so the bytes are a
// deterministic function of the tree.
type jsonReport struct {
	Analyzers []string      `json:"analyzers"`
	Findings  []jsonFinding `json:"findings"`
}

func standalone(patterns []string, asJSON bool) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "moodvet:", err)
		return 1
	}
	targets, err := load.Load(wd, modulePath, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moodvet:", err)
		return 1
	}
	suite := lint.Suite()
	// Test variants (`pkg [pkg.test]`) re-analyze the non-test files of
	// their base package, so the same finding can surface twice; report
	// each position/message once.
	seen := map[string]bool{}
	var all []analysis.Diagnostic
	for _, t := range targets {
		diags, err := analysis.Run(t, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "moodvet:", err)
			return 1
		}
		for _, d := range diags {
			line := d.String()
			if seen[line] {
				continue
			}
			seen[line] = true
			all = append(all, d)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].String() < all[j].String() })
	if asJSON {
		return emitJSON(suite, all)
	}
	for _, d := range all {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "moodvet: %d diagnostic(s)\n", len(all))
		return 2
	}
	return 0
}

// emitJSON writes the report to stdout. Same exit contract as the text
// mode: 0 clean, 2 with findings.
func emitJSON(suite []*analysis.Analyzer, diags []analysis.Diagnostic) int {
	rep := jsonReport{Findings: []jsonFinding{}}
	for _, a := range suite {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	sort.Strings(rep.Analyzers)
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "moodvet:", err)
		return 1
	}
	fmt.Fprintln(os.Stdout, string(out))
	if len(diags) > 0 {
		return 2
	}
	return 0
}
