package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mood/internal/loadgen"
	"mood/internal/service"
	"mood/internal/trace"
)

func TestRunFlagErrors(t *testing.T) {
	tests := [][]string{
		{},                                 // no -node
		{"-node", "n00"},                   // not id=url
		{"-node", "=http://x"},             // empty id
		{"-node", "n00="},                  // empty url
		{"-node", "n00=http://x", "-addr"}, // broken flag
		{"-node", "n00=http://x", "-node", "n00=http://y"}, // duplicate ID (ring rejects)
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestNodeFlagRoundTrip(t *testing.T) {
	var nf nodeFlags
	if err := nf.Set("n00=http://a:1/"); err != nil {
		t.Fatal(err)
	}
	if err := nf.Set("n01=http://b:2"); err != nil {
		t.Fatal(err)
	}
	if got, want := nf.String(), "n00=http://a:1,n01=http://b:2"; got != want {
		t.Fatalf("String() = %q, want %q (trailing slash must be trimmed)", got, want)
	}
}

// TestRouterRoutesToRealNodes boots two real moodserver backends, runs
// the router binary's serve loop against them, uploads through the
// router and checks the scattered stats see both the upload and the
// ring identity.
func TestRouterRoutesToRealNodes(t *testing.T) {
	backends := make([]*httptest.Server, 2)
	for i := range backends {
		srv, err := service.New(loadgen.EchoProtector{}, service.WithNodeID([]string{"n00", "n01"}[i]))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		backends[i] = httptest.NewServer(srv.Handler())
		t.Cleanup(backends[i].Close)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- runCtx(ctx, []string{
			"-addr", addr,
			"-node", "n00=" + backends[0].URL,
			"-node", "n01=" + backends[1].URL,
			"-probe-interval", "25ms",
		})
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("router exited with: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("router never shut down")
		}
	})

	base := "http://" + addr
	waitHealthy(t, base)

	c := service.NewClient(base)
	results, err := c.UploadBatch([]service.BatchChunk{
		{User: "alice", Records: trace.Records{{Lat: 1, Lon: 2, TS: 1700000000}}, Key: "k-1"},
	})
	if err != nil {
		t.Fatalf("upload through the router: %v", err)
	}
	if len(results) != 1 || results[0].Status != http.StatusOK {
		t.Fatalf("upload results = %+v", results)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Uploads != 1 || st.Users != 1 {
		t.Fatalf("scattered stats = %+v, want the one upload", st)
	}

	// The aggregate carries the per-node cluster section.
	resp, err := http.Get(base + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cluster struct {
			RingEpoch int64 `json:"ring_epoch"`
			Nodes     []struct {
				ID string `json:"id"`
			} `json:"nodes"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cluster.Nodes) != 2 || doc.Cluster.RingEpoch < 1 {
		t.Fatalf("cluster section = %s", body)
	}
	ids := []string{doc.Cluster.Nodes[0].ID, doc.Cluster.Nodes[1].ID}
	if strings.Join(ids, ",") != "n00,n01" {
		t.Fatalf("cluster node IDs = %v", ids)
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("router never became healthy")
}
