// Command moodrouter fronts a sharded moodserver deployment: a thin
// reverse proxy that owns the rendezvous ring over the configured
// nodes, forwards every per-user request of the v2 surface to the ring
// owner of its X-Mood-User, and scatter-gathers the non-user-scoped
// reads (/v2/stats with a per-node breakdown, /v2/metrics, /v2/jobs,
// the page-merged /v2/dataset) across the whole membership. Admin
// retrains fan out to every node and aggregate the reports.
//
// Usage:
//
//	moodrouter -node n00=http://10.0.0.1:8080 -node n01=http://10.0.0.2:8080
//	           [-addr :8080] [-token T]
//	           [-probe-interval 500ms] [-probe-timeout 2s] [-fail-threshold 3]
//
// Each -node pins a stable identity to a base URL; the same IDs must be
// passed to the nodes as moodserver -node-id, because every forwarded
// request is stamped with the computed owner and the node refuses a
// mismatch (the misroute tripwire). Health checks probe every node's
// /healthz; a node failing -fail-threshold consecutive probes is marked
// down and its keys answer a retryable 503 problem code "routing" with
// Retry-After until it recovers — ownership never moves on a health
// transition, so a flapping node can never fork a user's durable state
// across two WALs.
//
// -token authenticates the router's own scatter/fan-out requests
// against the nodes; owner-forwarded requests pass the client's
// Authorization header through untouched.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mood/internal/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "moodrouter:", err)
		os.Exit(1)
	}
}

// nodeFlags collects repeatable -node id=url pairs in argument order.
type nodeFlags []cluster.Node

func (nf *nodeFlags) String() string {
	parts := make([]string, len(*nf))
	for i, n := range *nf {
		parts[i] = n.ID + "=" + n.URL
	}
	return strings.Join(parts, ",")
}

func (nf *nodeFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return fmt.Errorf("want id=url, got %q", v)
	}
	*nf = append(*nf, cluster.Node{ID: id, URL: strings.TrimSuffix(url, "/")})
	return nil
}

func run(args []string) error {
	return runCtx(context.Background(), args)
}

// runCtx serves until the context is cancelled or a signal arrives.
// Tests drive shutdown through the context.
func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("moodrouter", flag.ContinueOnError)
	var nodes nodeFlags
	fs.Var(&nodes, "node", "cluster member as id=url (repeatable, at least one)")
	addr := fs.String("addr", ":8080", "listen address")
	token := fs.String("token", "", "bearer token for router-originated scatter/fan-out requests to the nodes")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "health sweep period")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "per-probe request timeout")
	failThreshold := fs.Int("fail-threshold", 3, "consecutive failed probes that mark a node down")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("at least one -node id=url is required")
	}

	m, err := cluster.NewMembership(cluster.Config{
		Nodes:         nodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailThreshold: *failThreshold,
	})
	if err != nil {
		return err
	}
	m.Start()
	defer m.Close()

	router, err := cluster.NewRouter(cluster.RouterConfig{
		Membership: m,
		Token:      *token,
		Log:        os.Stderr,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	log.Printf("moodrouter: ring over %v, listening on %s", ids, *addr)
	httpServer := &http.Server{
		Addr:    *addr,
		Handler: router,
		// Bound every phase of the client-side exchange; the proxied
		// leg is bounded by each request's own context.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("moodrouter: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return httpServer.Shutdown(shctx)
}
