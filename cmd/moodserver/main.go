// Command moodserver runs the crowd-sensing middleware: participants
// POST daily mobility chunks to /v1/upload and only protected,
// pseudonymised fragments are admitted to GET /v1/dataset.
//
// Usage:
//
//	moodserver -background bg.csv [-addr :8080] [-seed 42] [-greedy]
//
// The background CSV plays the attacker-side knowledge H: it trains the
// re-identification attacks the middleware defends against and feeds
// HMC's pool of imitation targets.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"mood"
	"mood/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "moodserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("moodserver", flag.ContinueOnError)
	background := fs.String("background", "", "CSV file with the attacker-side background knowledge (required)")
	addr := fs.String("addr", ":8080", "listen address")
	seed := fs.Uint64("seed", 42, "random seed")
	greedy := fs.Bool("greedy", false, "use the heuristic composition search")
	delta := fs.Duration("delta", 0, "fine-grained stop threshold (default 4h)")
	token := fs.String("token", "", "require this bearer token on every API call")
	statePath := fs.String("state", "", "snapshot file: loaded at startup if present, saved periodically")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *background == "" {
		return fmt.Errorf("-background is required")
	}

	bg, err := mood.LoadCSVFile(*background, "background")
	if err != nil {
		return err
	}
	opts := []mood.Option{mood.WithSeed(*seed)}
	if *greedy {
		opts = append(opts, mood.WithGreedySearch())
	}
	if *delta > 0 {
		opts = append(opts, mood.WithDelta(*delta))
	}
	pipeline, err := mood.NewPipeline(bg.Traces, opts...)
	if err != nil {
		return err
	}
	srv, err := service.New(pipelineProtector{pipeline})
	if err != nil {
		return err
	}
	if *statePath != "" {
		if _, serr := os.Stat(*statePath); serr == nil {
			if err := srv.LoadState(*statePath); err != nil {
				return err
			}
			log.Printf("moodserver: restored state from %s", *statePath)
		}
		go func() {
			for range time.Tick(time.Minute) {
				if err := srv.SaveState(*statePath); err != nil {
					log.Printf("moodserver: snapshot failed: %v", err)
				}
			}
		}()
	}
	handler := srv.Handler()
	if *token != "" {
		handler = service.WithAuth(*token, handler)
	}

	log.Printf("moodserver: background %d users, attacks %v, listening on %s",
		bg.NumUsers(), pipeline.Attacks(), *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return httpServer.ListenAndServe()
}

// pipelineProtector adapts the public Pipeline to the service interface.
type pipelineProtector struct {
	p *mood.Pipeline
}

func (pp pipelineProtector) Protect(t mood.Trace) (mood.Result, error) {
	return pp.p.Protect(t)
}
