// Command moodserver runs the crowd-sensing middleware: participants
// stream daily mobility chunks to POST /v2/traces (NDJSON batches;
// the deprecated single-chunk POST /v1/upload shim stays mounted) and
// only protected, pseudonymised fragments are admitted to the
// cursor-paginated GET /v2/dataset. The server is self-describing:
// GET /v2/openapi.json serves an OpenAPI document generated from the
// same route table that drives the router.
//
// Usage:
//
//	moodserver -background bg.csv [-addr :8080] [-seed 42] [-greedy]
//	           [-token T] [-state snapshot.json]
//	           [-store json|wal] [-wal-dir DIR] [-fsync always|group]
//	           [-rate 0] [-burst 10] [-queue 64] [-workers 0]
//	           [-request-timeout 2m]
//	           [-retrain-interval 0] [-history-cap 50000] [-node-id n00]
//
// The background CSV plays the attacker-side knowledge H: it trains the
// re-identification attacks the middleware defends against and feeds
// HMC's pool of imitation targets.
//
// Dynamic protection (paper §6): the server accumulates every accepted
// upload's raw records as the history a real adversary would have
// collected. -retrain-interval > 0 periodically retrains the attack set
// and HMC background on initial-background + history, hot-swaps the
// engine without upload downtime, and re-audits the published dataset,
// quarantining fragments the refreshed attacks re-identify. The same
// pass can be triggered on demand with POST /v2/admin/retrain (always
// available, behind -token when set).
//
// Durability: -state snapshots through the json store (loaded at
// startup, checkpointed periodically with retry + backoff, flushed on
// shutdown); -wal-dir switches to a segmented append-only write-ahead
// log where, under -fsync=always, every upload is on stable storage
// before it is acknowledged — a crash at ANY point (power loss, kill
// -9) loses zero acked uploads, and reboot replays the log. -fsync=
// group trades one fsync per upload for batched group commit. Either
// way /v2/stats surfaces the checkpoint health.
//
// Clustering: behind cmd/moodrouter each node runs with a stable
// -node-id and its own WAL. The router stamps every forwarded request
// with the computed ring owner; a node refuses requests stamped for
// somebody else with a retryable 503 (problem code "routing") instead
// of executing them — ownership mistakes fail loudly, never as a
// silent misroute across two nodes' state.
//
// The server also shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests finish, the upload queue drains, and a final checkpoint is
// flushed so no accepted upload is lost even without a WAL.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mood"
	"mood/internal/clock"
	"mood/internal/service"
	"mood/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "moodserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	return runCtx(context.Background(), args)
}

// runCtx serves until the context is cancelled or a signal arrives,
// then shuts down gracefully. Tests drive shutdown through the context.
func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("moodserver", flag.ContinueOnError)
	background := fs.String("background", "", "CSV file with the attacker-side background knowledge (required)")
	addr := fs.String("addr", ":8080", "listen address")
	seed := fs.Uint64("seed", 42, "random seed")
	greedy := fs.Bool("greedy", false, "use the heuristic composition search")
	delta := fs.Duration("delta", 0, "fine-grained stop threshold (default 4h)")
	token := fs.String("token", "", "require this bearer token on every API call")
	statePath := fs.String("state", "", "snapshot file: loaded at startup if present, saved periodically and on shutdown")
	storeKind := fs.String("store", "", `durability backend: "json" (snapshot at -state) or "wal" (log at -wal-dir); default infers from which path flag is set`)
	walDir := fs.String("wal-dir", "", "write-ahead log directory (implies -store=wal)")
	fsync := fs.String("fsync", "always", `WAL sync policy: "always" (fsync before every ack) or "group" (batched group commit)`)
	rate := fs.Float64("rate", 0, "per-user rate limit in requests/second (0 = unlimited)")
	burst := fs.Int("burst", 10, "per-user rate-limit burst")
	queue := fs.Int("queue", 64, "upload queue depth (full queue answers 503)")
	workers := fs.Int("workers", 0, "upload worker-pool size (0 = GOMAXPROCS)")
	reqTimeout := fs.Duration("request-timeout", 2*time.Minute, "per-request timeout (negative disables)")
	retrainInterval := fs.Duration("retrain-interval", 0, "periodic attack retraining + re-audit (0 = only on POST /v1/admin/retrain)")
	historyCap := fs.Int("history-cap", 0, "per-user raw history the retrainer learns from, in records (0 = default 50000, negative disables)")
	nodeID := fs.String("node-id", "", "stable cluster node identity (required behind moodrouter; enables the misroute tripwire and the stats node section)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *background == "" {
		return fmt.Errorf("-background is required")
	}
	st, err := buildStore(*storeKind, *statePath, *walDir, *fsync)
	if err != nil {
		return err
	}

	bg, err := mood.LoadCSVFile(*background, "background")
	if err != nil {
		return err
	}
	opts := []mood.Option{mood.WithSeed(*seed)}
	if *greedy {
		opts = append(opts, mood.WithGreedySearch())
	}
	if *delta > 0 {
		opts = append(opts, mood.WithDelta(*delta))
	}
	pipeline, err := mood.NewPipeline(bg.Traces, opts...)
	if err != nil {
		return err
	}
	// One clock feeds every time-dependent layer (rate limiter,
	// idempotency TTL, retrain ticker, snapshot loop), so an embedder
	// swapping in a clock.Manual steps the whole server coherently.
	clk := clock.System()
	svcOpts := []service.Option{
		service.WithClock(clk),
		service.WithRateLimit(*rate, *burst),
		service.WithQueueDepth(*queue),
		service.WithWorkers(*workers),
		service.WithRequestTimeout(*reqTimeout),
		service.WithAuthToken(*token),
		service.WithRetrainer(&pipelineRetrainer{base: pipeline, initial: bg.Traces}, *retrainInterval),
		service.WithHistoryCap(*historyCap),
	}
	if *nodeID != "" {
		svcOpts = append(svcOpts, service.WithNodeID(*nodeID))
	}
	if st != nil {
		svcOpts = append(svcOpts, service.WithStore(st))
	}
	srv, err := service.New(pipelineProtector{pipeline}, svcOpts...)
	if err != nil {
		return err
	}
	defer srv.Close()

	if st != nil {
		// Replay the snapshot plus every record appended after it, and
		// start the background checkpoint loop (periodic compaction with
		// retry + backoff; health on /v2/stats).
		if err := srv.Recover(); err != nil {
			return err
		}
		log.Printf("moodserver: recovered state from %s store", st.Name())
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("moodserver: background %d users, attacks %v, listening on %s",
		bg.NumUsers(), pipeline.Attacks(), *addr)
	httpServer := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slow or stalled clients must not pin connections: bound every
		// phase of the exchange, not just the header read.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout(*reqTimeout),
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("moodserver: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := httpServer.Shutdown(shctx)
	// Close drains the upload queue, joins the checkpoint loop, flushes
	// a final checkpoint and closes the store — every accepted upload is
	// persisted before the process exits.
	if err := srv.Close(); err != nil {
		return fmt.Errorf("final checkpoint: %w", err)
	}
	if st != nil {
		log.Printf("moodserver: final checkpoint flushed to %s store", st.Name())
	}
	return shutdownErr
}

// buildStore maps the durability flags onto a store backend. No path
// flag means no durability (a purely in-memory server, as before the
// store existed).
func buildStore(kind, statePath, walDir, fsync string) (store.Store, error) {
	if kind == "" {
		switch {
		case walDir != "":
			kind = "wal"
		case statePath != "":
			kind = "json"
		default:
			return nil, nil
		}
	}
	switch kind {
	case "json":
		if statePath == "" {
			return nil, fmt.Errorf("-store=json requires -state")
		}
		return store.NewJSONFile(statePath, nil), nil
	case "wal":
		if walDir == "" {
			return nil, fmt.Errorf("-store=wal requires -wal-dir")
		}
		mode, err := store.ParseFsyncMode(fsync)
		if err != nil {
			return nil, err
		}
		return store.NewWAL(store.WALOptions{Dir: walDir, Fsync: mode})
	default:
		return nil, fmt.Errorf("unknown -store %q (use \"json\" or \"wal\")", kind)
	}
}

// writeTimeout leaves the handler-side timeout room to answer before
// the connection is cut. A zero flag means the service's default
// handler timeout is in effect, so the write timeout must bracket
// that, not vanish; only a negative flag truly disables the handler
// timeout.
func writeTimeout(reqTimeout time.Duration) time.Duration {
	if reqTimeout < 0 {
		return 0 // handler timeout disabled; do not cut long protections short
	}
	if reqTimeout == 0 {
		reqTimeout = service.DefaultRequestTimeout
	}
	return reqTimeout + 30*time.Second
}

// pipelineProtector adapts the public Pipeline to the service interface.
type pipelineProtector struct {
	p *mood.Pipeline
}

func (pp pipelineProtector) Protect(t mood.Trace) (mood.Result, error) {
	return pp.p.Protect(t)
}

// pipelineRetrainer rebuilds the pipeline for the service's dynamic
// protection: the retrained background is the initial CSV background —
// the H the attacks started from — merged per user with everything the
// participants have uploaded since (the history the service hands over).
type pipelineRetrainer struct {
	base    *mood.Pipeline
	initial []mood.Trace
}

func (rt *pipelineRetrainer) Retrain(history []mood.Trace) (service.Protector, service.Auditor, error) {
	merged := make([]mood.Trace, 0, len(rt.initial)+len(history))
	merged = append(merged, rt.initial...)
	merged = append(merged, history...)
	bg := mood.NewDataset("background", merged)
	p, err := rt.base.Retrain(bg.Traces)
	if err != nil {
		return nil, nil, err
	}
	return pipelineProtector{p}, p, nil
}
