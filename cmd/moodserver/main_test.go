package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mood/internal/service"
	"mood/internal/synth"
	"mood/internal/traceio"
)

func TestRunFlagErrors(t *testing.T) {
	tests := [][]string{
		{},                                    // missing -background
		{"-background", "/nonexistent.csv"},   // unreadable file
		{"-background", "/dev/null", "-addr"}, // broken flag
		{"-background", "/dev/null", "-store", "json"},                              // -store=json without -state
		{"-background", "/dev/null", "-store", "wal"},                               // -store=wal without -wal-dir
		{"-background", "/dev/null", "-store", "bogus"},                             // unknown backend
		{"-background", "/dev/null", "-wal-dir", os.DevNull, "-fsync", "sometimes"}, // bad fsync mode
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestServerServesAfterStartup(t *testing.T) {
	// Write a tiny background and start the real server on an ephemeral
	// port; then probe /healthz.
	cfg := synth.PrivamovLike(synth.ScaleTiny, 31)
	cfg.NumUsers = 4
	cfg.Days = 4
	d := synth.MustGenerate(cfg)
	bg := filepath.Join(t.TempDir(), "bg.csv")
	if err := traceio.SaveCSVFile(bg, d); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	errc := make(chan error, 1)
	go func() { errc <- run([]string{"-background", bg, "-addr", addr}) }()

	deadline := time.After(10 * time.Second)
	for {
		select {
		case err := <-errc:
			t.Fatalf("server exited early: %v", err)
		case <-deadline:
			t.Fatal("server never became healthy")
		default:
		}
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return // success; the goroutine dies with the process
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestGracefulShutdownFlushesState is the regression test for the
// snapshot-loss bug: before graceful shutdown existed, any upload
// accepted since the last minute-tick snapshot was lost on SIGTERM.
// Now cancelling the server must flush a final snapshot to -state.
func TestGracefulShutdownFlushesState(t *testing.T) {
	cfg := synth.PrivamovLike(synth.ScaleTiny, 33)
	cfg.NumUsers = 4
	cfg.Days = 4
	d := synth.MustGenerate(cfg)
	bg := filepath.Join(t.TempDir(), "bg.csv")
	if err := traceio.SaveCSVFile(bg, d); err != nil {
		t.Fatal(err)
	}
	statePath := filepath.Join(t.TempDir(), "state.json")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		errc <- runCtx(ctx, []string{"-background", bg, "-addr", addr, "-state", statePath})
	}()

	c := service.NewClient("http://" + addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Stats(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// One upload, then immediate shutdown: well inside the one-minute
	// periodic snapshot window, so only the final flush can save it.
	if _, err := c.Upload(d.Traces[0].Chunks(24 * time.Hour)[0]); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}

	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatalf("no final snapshot written: %v", err)
	}
	var state struct {
		Stats service.ServerStats `json:"stats"`
	}
	if err := json.Unmarshal(data, &state); err != nil {
		t.Fatal(err)
	}
	if state.Stats.Uploads < 1 {
		t.Fatalf("snapshot lost the upload: %+v", state.Stats)
	}
}

// TestAdminRetrainEndToEnd drives the dynamic-protection wiring through
// the real binary: upload raw chunks, trigger POST /v1/admin/retrain,
// and check the server rebuilt its attacks on background + history,
// re-audited the published dataset, and kept serving uploads.
func TestAdminRetrainEndToEnd(t *testing.T) {
	cfg := synth.PrivamovLike(synth.ScaleTiny, 35)
	cfg.NumUsers = 4
	cfg.Days = 4
	d := synth.MustGenerate(cfg)
	bg := filepath.Join(t.TempDir(), "bg.csv")
	if err := traceio.SaveCSVFile(bg, d); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		errc <- runCtx(ctx, []string{"-background", bg, "-addr", addr, "-history-cap", "1000"})
	}()

	c := service.NewClient("http://" + addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Stats(); err == nil {
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("server exited early: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(100 * time.Millisecond)
	}

	chunk := d.Traces[0].Chunks(24 * time.Hour)[0]
	if _, err := c.Upload(chunk); err != nil {
		t.Fatal(err)
	}

	report, err := c.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if report.HistoryUsers != 1 || report.HistoryRecords != chunk.Len() {
		t.Fatalf("retrain trained on %d users / %d records, want 1/%d",
			report.HistoryUsers, report.HistoryRecords, chunk.Len())
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Retrains != 1 {
		t.Fatalf("stats after retrain: %+v", st)
	}

	// The swapped engine keeps serving.
	if _, err := c.Upload(d.Traces[1].Chunks(24 * time.Hour)[0]); err != nil {
		t.Fatalf("upload after retrain: %v", err)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
}
