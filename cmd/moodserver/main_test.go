package main

import (
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"mood/internal/synth"
	"mood/internal/traceio"
)

func TestRunFlagErrors(t *testing.T) {
	tests := [][]string{
		{},                                    // missing -background
		{"-background", "/nonexistent.csv"},   // unreadable file
		{"-background", "/dev/null", "-addr"}, // broken flag
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestServerServesAfterStartup(t *testing.T) {
	// Write a tiny background and start the real server on an ephemeral
	// port; then probe /healthz.
	cfg := synth.PrivamovLike(synth.ScaleTiny, 31)
	cfg.NumUsers = 4
	cfg.Days = 4
	d := synth.MustGenerate(cfg)
	bg := filepath.Join(t.TempDir(), "bg.csv")
	if err := traceio.SaveCSVFile(bg, d); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	errc := make(chan error, 1)
	go func() { errc <- run([]string{"-background", bg, "-addr", addr}) }()

	deadline := time.After(10 * time.Second)
	for {
		select {
		case err := <-errc:
			t.Fatalf("server exited early: %v", err)
		case <-deadline:
			t.Fatal("server never became healthy")
		default:
		}
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return // success; the goroutine dies with the process
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
}
