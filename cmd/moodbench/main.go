// Command moodbench regenerates every table and figure of the paper's
// evaluation section on the synthetic datasets.
//
// Usage:
//
//	moodbench [-scale bench] [-seed 42] [-figure all] [-dataset name,...] [-search brute]
//
// Figures: table1, fig2, fig3, fig6, fig7, fig8, fig9, fig10, all.
// fig6 uses the single-attack setting (AP only); everything else runs
// the full attack set (AP + POI + PIT).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mood/internal/core"
	"mood/internal/eval"
	"mood/internal/report"
	"mood/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "moodbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("moodbench", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "bench", "dataset scale: tiny, bench or paper")
	seed := fs.Uint64("seed", 42, "random seed (datasets, LPPM noise, pseudonyms)")
	figure := fs.String("figure", "all", "which figure to regenerate: table1, fig2, fig3, fig6, fig7, fig8, fig9, fig10, dynamic or all")
	datasets := fs.String("dataset", "", "comma-separated dataset subset (default: all four)")
	search := fs.String("search", "brute", "composition search: brute or greedy")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON summary instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := synth.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}
	var strategy core.SearchStrategy
	switch *search {
	case "brute":
		strategy = core.BruteForce{}
	case "greedy":
		strategy = core.Greedy{}
	default:
		return fmt.Errorf("unknown search strategy %q", *search)
	}

	if *figure == "dynamic" {
		return runDynamic(out, scale, *seed)
	}

	cfg := eval.Config{Scale: scale, Seed: *seed, Datasets: names, Search: strategy}
	wantSingle := *figure == "all" || *figure == "fig6"
	wantMulti := *figure != "fig6"

	//mood:allow clockdiscipline -- operator-facing elapsed time on a CLI; nothing downstream consumes it
	start := time.Now()
	var multi eval.Run
	if wantMulti {
		multi, err = eval.RunAll(cfg)
		if err != nil {
			return err
		}
	}
	var single *eval.Run
	if wantSingle {
		sCfg := cfg
		sCfg.SingleAttack = true
		sr, err := eval.RunAll(sCfg)
		if err != nil {
			return err
		}
		single = &sr
	}

	if *jsonOut {
		if !wantMulti {
			return report.WriteJSON(out, *single)
		}
		return report.WriteJSON(out, multi)
	}

	switch *figure {
	case "all":
		report.All(out, multi, single)
	case "table1":
		report.Table1(out, multi)
	case "fig2":
		report.Figure2(out, multi)
	case "fig3":
		report.Figure3(out, multi)
	case "fig6":
		report.FigureUsers(out, *single, "Figure 6. Non-protected users, single attack (AP only)")
	case "fig7":
		report.FigureUsers(out, multi, "Figure 7. Non-protected users, multiple attacks (AP+POI+PIT)")
	case "fig8":
		report.Figure8(out, multi)
	case "fig9":
		report.Figure9(out, multi)
	case "fig10":
		report.Figure10(out, multi)
	default:
		return fmt.Errorf("unknown figure %q", *figure)
	}
	//mood:allow clockdiscipline -- wall-clock elapsed line for the operator, outside every figure/report body
	elapsed := time.Since(start).Round(time.Millisecond)
	fmt.Fprintf(out, "\n(scale=%s seed=%d search=%s elapsed=%s)\n",
		scale, *seed, *search, elapsed)
	return nil
}

// runDynamic executes the §6 dynamic-protection extension: static vs
// retrained verification over publication rounds.
func runDynamic(out io.Writer, scale synth.Scale, seed uint64) error {
	static, err := eval.RunDynamic(eval.DynamicConfig{Scale: scale, Seed: seed, Rounds: 3})
	if err != nil {
		return err
	}
	dynamic, err := eval.RunDynamic(eval.DynamicConfig{Scale: scale, Seed: seed, Rounds: 3, Retrain: true})
	if err != nil {
		return err
	}
	report.Dynamic(out, static, dynamic)
	return nil
}
