package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTable1Tiny(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scale", "tiny", "-figure", "table1", "-dataset", "mdc,privamov", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "mdc", "privamov", "Geneva", "Lyon"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig7Tiny(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scale", "tiny", "-figure", "fig7", "-dataset", "privamov", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MooD") {
		t.Fatalf("missing MooD column: %s", buf.String())
	}
}

func TestRunFig6UsesSingleAttack(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scale", "tiny", "-figure", "fig6", "-dataset", "privamov", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AP only") {
		t.Fatalf("fig6 must state the single-attack setting: %s", buf.String())
	}
}

func TestRunDynamicFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scale", "tiny", "-figure", "dynamic", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dynamic protection") {
		t.Fatalf("missing dynamic table: %s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-scale", "huge"},
		{"-figure", "fig99", "-scale", "tiny"},
		{"-search", "quantum", "-scale", "tiny"},
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunGreedySearchFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scale", "tiny", "-figure", "fig7", "-dataset", "privamov", "-search", "greedy", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "search=greedy") {
		t.Fatalf("footer must echo the search strategy: %s", buf.String())
	}
}
