// Command datagen emits the synthetic mobility datasets to CSV or JSONL
// files, for inspection or for feeding external tools.
//
// Usage:
//
//	datagen -dataset mdc -scale bench -seed 42 -out mdc.csv [-format csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"mood/internal/synth"
	"mood/internal/traceio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	dataset := fs.String("dataset", "mdc", "preset: mdc, privamov, geolife or cabspotting")
	scaleFlag := fs.String("scale", "bench", "scale: tiny, bench or paper")
	seed := fs.Uint64("seed", 42, "random seed")
	out := fs.String("out", "", "output path (default: <dataset>.<format>)")
	format := fs.String("format", "csv", "output format: csv, jsonl, csv.gz or jsonl.gz (used for the default filename; -out extensions win)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := synth.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	cfg, err := synth.PresetByName(*dataset, scale, *seed)
	if err != nil {
		return err
	}
	d, err := synth.Generate(cfg)
	if err != nil {
		return err
	}

	switch *format {
	case "csv", "jsonl", "csv.gz", "jsonl.gz":
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	path := *out
	if path == "" {
		path = *dataset + "." + *format
	}
	if err := traceio.SaveFile(path, d); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d users, %d records\n", path, d.NumUsers(), d.NumRecords())
	return nil
}
