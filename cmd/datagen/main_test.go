package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mood/internal/traceio"
)

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.csv")
	if err := run([]string{"-dataset", "privamov", "-scale", "tiny", "-seed", "5", "-out", out}); err != nil {
		t.Fatal(err)
	}
	d, err := traceio.LoadCSVFile(out, "d")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() == 0 || d.NumRecords() == 0 {
		t.Fatalf("empty dataset written: %v", d)
	}
}

func TestRunWritesJSONL(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.jsonl")
	if err := run([]string{"-dataset", "privamov", "-scale", "tiny", "-seed", "5", "-out", out, "-format", "jsonl"}); err != nil {
		t.Fatal(err)
	}
	d, err := traceio.LoadJSONLFile(out, "d")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() == 0 {
		t.Fatal("empty dataset written")
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	for _, out := range []string{a, b} {
		if err := run([]string{"-dataset", "privamov", "-scale", "tiny", "-seed", "5", "-out", out}); err != nil {
			t.Fatal(err)
		}
	}
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatal("same seed must write identical files")
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-dataset", "nope", "-scale", "tiny"},
		{"-dataset", "mdc", "-scale", "huge"},
		{"-dataset", "mdc", "-scale", "tiny", "-format", "xml"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("run(%v) paniced: %v", args, err)
		}
	}
}

func TestRunWritesGzip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.csv.gz")
	if err := run([]string{"-dataset", "privamov", "-scale", "tiny", "-seed", "5", "-out", out}); err != nil {
		t.Fatal(err)
	}
	d, err := traceio.LoadFile(out, "d")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() == 0 {
		t.Fatal("empty gzip dataset")
	}
}
