// Command moodload runs deterministic workload scenarios against the
// MooD crowd-sensing middleware and reports whether the service tier's
// accounting invariants held. It is the operational face of
// internal/loadgen: the soak harness every scale change is validated
// against.
//
// Usage:
//
//	moodload -scenario steady|burst|drift-retrain|restart|crash|cluster
//	         [-seed 7] [-users 8] [-rounds 3] [-workers 0]
//	         [-engine mood|echo] [-target URL] [-token T] [-out report.json]
//
// With no -target, moodload self-hosts the server in-process: the
// workload's background half trains the real MooD engine (-engine mood,
// the default) or a pass-through echo engine (-engine echo, for
// high-rate soaks of the service tier alone). The drift-retrain
// scenario wires the same retrainer cmd/moodserver uses; the restart
// scenario snapshots, closes and reboots the server in the middle of a
// round; the crash scenario runs the server over a write-ahead log and
// kills it mid-round without drain or snapshot — the reboot must
// replay every acknowledged upload from the log; and the cluster
// scenario self-hosts three WAL nodes behind the rendezvous router,
// kills one mid-round, holds it down until the health checker evicts
// it from the ring, and reboots it under traffic — the report gains a
// cluster-misroute violation if any request ever executed on the
// wrong node (all of these are self-host only).
//
// The report is printed to stdout as JSON and is deterministic for a
// fixed seed: two runs of the same scenario produce byte-identical
// reports, so soak results diff cleanly across commits. Progress and
// transient-retry noise go to stderr. Exit status is 0 only when every
// invariant checker passed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"mood"
	"mood/internal/loadgen"
	"mood/internal/service"
	"mood/internal/store"
	"mood/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "moodload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("moodload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "steady", "workload scenario: "+fmt.Sprint(loadgen.ScenarioNames()))
	seed := fs.Uint64("seed", 7, "workload seed (fixed seed = reproducible report)")
	users := fs.Int("users", 8, "population size")
	rounds := fs.Int("rounds", 3, "publication rounds")
	workers := fs.Int("workers", 0, "client concurrency (0 = scenario default)")
	engine := fs.String("engine", "mood", "self-hosted protection engine: mood (real pipeline) or echo (pass-through)")
	target := fs.String("target", "", "drive an external server at this base URL instead of self-hosting")
	token := fs.String("token", "", "bearer token for the target server")
	out := fs.String("out", "", "also write the report JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := loadgen.Scenario(*scenario, *seed, *users, *rounds)
	if err != nil {
		return err
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.AuthToken = *token

	w, err := loadgen.Build(cfg)
	if err != nil {
		return err
	}

	baseURL := *target
	var misroutes func() int64
	if baseURL == "" && *scenario == "cluster" {
		ch, err := newSelfCluster(cfg, w, *engine)
		if err != nil {
			return err
		}
		defer ch.close()
		cfg.Restart = ch.host.FailoverOne
		misroutes = ch.host.Misroutes
		baseURL = ch.host.URL()
		fmt.Fprintf(stderr, "moodload: self-hosting a 3-node %s-engine cluster behind %s (%d background users)\n",
			*engine, baseURL, w.Background.NumUsers())
	} else if baseURL == "" {
		h, err := newSelfHost(cfg, w, *engine)
		if err != nil {
			return err
		}
		defer h.close()
		cfg.Restart = h.restart
		baseURL = h.url
		fmt.Fprintf(stderr, "moodload: self-hosting %s engine on %s (%d background users)\n",
			*engine, baseURL, w.Background.NumUsers())
	} else if cfg.RestartAfterRound > 0 {
		return fmt.Errorf("the %s scenario restarts the server and needs self-hosting; drop -target", *scenario)
	}

	rep, err := loadgen.NewDriver(cfg, baseURL, stderr).RunWorkload(w)
	if err != nil {
		return err
	}
	if misroutes != nil {
		// The misroute tripwire is cluster-side state the driver cannot
		// see; a non-zero count means a request executed on the wrong
		// node and is a violation like any other.
		if n := misroutes(); n != 0 {
			rep.OK = false
			rep.Violations = append(rep.Violations, loadgen.Violation{
				Invariant: "cluster-misroute",
				Detail:    fmt.Sprintf("misroute tripwire fired %d time(s)", n),
			})
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := stdout.Write(data); err != nil {
		return err
	}
	if *out != "" {
		//mood:allow persistio -- the -out report is a CLI artifact, not server state
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	}
	if !rep.OK {
		return fmt.Errorf("%d invariant violation(s); see report", len(rep.Violations))
	}
	fmt.Fprintln(stderr, "moodload: all invariants green")
	return nil
}

// ---------------------------------------------------------------------------
// Self-hosted server with restart support.

// selfHost is a loadgen.Host (the shared teardown → reboot → swap
// machinery) bound to a real listener and a temp state directory.
// reboot is the scenario's mid-round callback: Restart (drain +
// snapshot) for the restart scenario, Crash (hard kill + WAL replay)
// for the crash scenario.
type selfHost struct {
	url      string
	hs       *http.Server
	host     *loadgen.Host
	stateDir string
	reboot   func() error
}

func newSelfHost(cfg loadgen.Config, w loadgen.Workload, engine string) (*selfHost, error) {
	protector, retrainer, err := buildEngine(engine, cfg.Seed, w.Background.Traces)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "moodload-*")
	if err != nil {
		return nil, err
	}
	var host *loadgen.Host
	if cfg.Scenario == "crash" {
		// Crash drills run over a write-ahead log: every ack is durable
		// before it leaves the server, so the hard kill may lose nothing.
		host, err = loadgen.NewWALHost(func(st store.Store) (*service.Server, error) {
			return service.New(protector,
				service.WithRetrainer(retrainer, 0),
				service.WithAuthToken(cfg.AuthToken),
				service.WithStore(st),
			)
		}, filepath.Join(dir, "wal"), nil)
	} else {
		host, err = loadgen.NewHost(func() (*service.Server, error) {
			return service.New(protector,
				service.WithRetrainer(retrainer, 0),
				service.WithAuthToken(cfg.AuthToken),
			)
		}, filepath.Join(dir, "state.json"))
	}
	if err != nil {
		os.RemoveAll(dir) //mood:allow persistio -- bench scratch dir teardown: the self-hosted server's state dir is ephemeral, not server state
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		host.Close()
		os.RemoveAll(dir) //mood:allow persistio -- bench scratch dir teardown: the self-hosted server's state dir is ephemeral, not server state
		return nil, err
	}
	h := &selfHost{
		url:      "http://" + ln.Addr().String(),
		hs:       &http.Server{Handler: host},
		host:     host,
		stateDir: dir,
	}
	if cfg.Scenario == "crash" {
		h.reboot = host.Crash
	} else {
		h.reboot = host.Restart
	}
	go h.hs.Serve(ln) //nolint:errcheck // closed via h.close
	return h, nil
}

// restart is the restart/crash scenario's mid-round callback.
func (h *selfHost) restart() error { return h.reboot() }

// selfCluster self-hosts the cluster scenario: three WAL nodes behind
// the rendezvous router, health-checked membership, FailoverOne as the
// mid-round callback.
type selfCluster struct {
	host *loadgen.ClusterHost
	dir  string
}

func newSelfCluster(cfg loadgen.Config, w loadgen.Workload, engine string) (*selfCluster, error) {
	protector, retrainer, err := buildEngine(engine, cfg.Seed, w.Background.Traces)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "moodload-cluster-*")
	if err != nil {
		return nil, err
	}
	ch, err := loadgen.NewClusterHost(loadgen.ClusterConfig{
		Dir:   dir,
		Token: cfg.AuthToken,
		New: func(nodeID string, st store.Store) (*service.Server, error) {
			return service.New(protector,
				service.WithNodeID(nodeID),
				service.WithRetrainer(retrainer, 0),
				service.WithAuthToken(cfg.AuthToken),
				service.WithStore(st),
			)
		},
	})
	if err != nil {
		os.RemoveAll(dir) //mood:allow persistio -- bench scratch dir teardown: the per-node WAL dirs are ephemeral, not server state
		return nil, err
	}
	return &selfCluster{host: ch, dir: dir}, nil
}

func (c *selfCluster) close() {
	c.host.Close()      //nolint:errcheck // teardown on exit
	os.RemoveAll(c.dir) //mood:allow persistio -- bench scratch dir teardown: the per-node WAL dirs are ephemeral, not server state
}

func (h *selfHost) close() {
	h.hs.Close()
	h.host.Close()
	os.RemoveAll(h.stateDir) //mood:allow persistio -- bench scratch dir teardown: the self-hosted server's state dir is ephemeral, not server state
}

// buildEngine assembles the self-hosted protection engine.
func buildEngine(kind string, seed uint64, background []trace.Trace) (service.Protector, service.Retrainer, error) {
	switch kind {
	case "mood":
		pipeline, err := mood.NewPipeline(background, mood.WithSeed(seed))
		if err != nil {
			return nil, nil, fmt.Errorf("training the engine: %w", err)
		}
		return pipelineProtector{pipeline}, &pipelineRetrainer{base: pipeline, initial: background}, nil
	case "echo":
		return loadgen.EchoProtector{Seed: seed}, echoRetrainer{}, nil
	default:
		return nil, nil, fmt.Errorf("unknown engine %q (want mood or echo)", kind)
	}
}

// pipelineProtector / pipelineRetrainer mirror cmd/moodserver's
// adapters: retraining merges the initial background with the
// accumulated upload history, exactly like the production server.
type pipelineProtector struct{ p *mood.Pipeline }

func (pp pipelineProtector) Protect(t mood.Trace) (mood.Result, error) { return pp.p.Protect(t) }

type pipelineRetrainer struct {
	base    *mood.Pipeline
	initial []mood.Trace
}

func (rt *pipelineRetrainer) Retrain(history []mood.Trace) (service.Protector, service.Auditor, error) {
	merged := make([]mood.Trace, 0, len(rt.initial)+len(history))
	merged = append(merged, rt.initial...)
	merged = append(merged, history...)
	bg := mood.NewDataset("background", merged)
	p, err := rt.base.Retrain(bg.Traces)
	if err != nil {
		return nil, nil, err
	}
	return pipelineProtector{p}, p, nil
}

// echoRetrainer keeps the engine and skips the audit — the barrier
// machinery still runs end to end.
type echoRetrainer struct{}

func (echoRetrainer) Retrain([]trace.Trace) (service.Protector, service.Auditor, error) {
	return nil, nil, nil
}
