package main

import (
	"bytes"
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"mood/internal/loadgen"
)

func runLoad(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out, io.Discard)
	return out.String(), err
}

// TestEchoSteadyReportReproducible pins the harness contract on the
// cheap engine: same seed, byte-identical report, zero violations.
func TestEchoSteadyReportReproducible(t *testing.T) {
	args := []string{"-scenario", "steady", "-engine", "echo", "-seed", "11", "-users", "6", "-rounds", "2"}
	out1, err := runLoad(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := runLoad(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatalf("reports differ:\n%s\nvs\n%s", out1, out2)
	}
	var rep loadgen.Report
	if err := json.Unmarshal([]byte(out1), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.OK || len(rep.Violations) != 0 {
		t.Fatalf("report not green: %+v", rep.Violations)
	}
	if rep.Requests.Uploads == 0 {
		t.Fatalf("empty run: %+v", rep.Requests)
	}
}

// TestDriftRetrainRealEngineReproducible is the acceptance drill: the
// drift+retrain scenario on the real MooD engine must quarantine under
// drift, keep every invariant green, and produce an identical report on
// a second run of the same seed.
func TestDriftRetrainRealEngineReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine scenario")
	}
	args := []string{"-scenario", "drift-retrain", "-seed", "7", "-users", "8", "-rounds", "3"}
	out1, err := runLoad(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := runLoad(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatalf("drift-retrain reports differ across runs:\n%s\nvs\n%s", out1, out2)
	}
	var rep loadgen.Report
	if err := json.Unmarshal([]byte(out1), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("violations: %+v", rep.Violations)
	}
	if rep.Stats.Retrains != 3 || len(rep.Retrains) != 3 {
		t.Fatalf("retrain barriers missing: %+v", rep)
	}
	if rep.Stats.QuarantinedTraces == 0 {
		t.Fatal("drift never quarantined a published fragment")
	}
}

// TestRestartScenarioSelfHost runs the snapshot+reboot drill through
// the CLI path (echo engine for speed).
func TestRestartScenarioSelfHost(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.json")
	out, err := runLoad(t, "-scenario", "restart", "-engine", "echo",
		"-seed", "3", "-users", "6", "-rounds", "2", "-out", outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("violations: %+v", rep.Violations)
	}
}

func TestFlagValidation(t *testing.T) {
	if _, err := runLoad(t, "-scenario", "nope"); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown scenario: %v", err)
	}
	if _, err := runLoad(t, "-scenario", "restart", "-target", "http://example.invalid"); err == nil ||
		!strings.Contains(err.Error(), "self-host") {
		t.Fatalf("restart with -target: %v", err)
	}
	if _, err := runLoad(t, "-engine", "warp"); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown engine: %v", err)
	}
}
