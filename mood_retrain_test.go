package mood_test

import (
	"reflect"
	"testing"

	"mood"
	"mood/internal/attack"
)

// TestPipelineRetrain covers the §6 rebuild API: a retrained pipeline is
// a fresh engine over new background knowledge with the original
// configuration, and the original pipeline keeps working untouched.
func TestPipelineRetrain(t *testing.T) {
	p1, test := env(t, 105)
	victim := test.Traces[0]

	before, err := p1.Protect(victim)
	if err != nil {
		t.Fatal(err)
	}

	// Retrain on the (drifted) test period itself.
	p2, err := p1.Retrain(test.Traces)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Fatal("Retrain returned the same pipeline")
	}
	if got := p2.Attacks(); len(got) != 3 {
		t.Fatalf("retrained attacks = %v", got)
	}

	// The retrained pipeline protects against its own attacks.
	res, err := p2.Protect(victim)
	if err != nil {
		t.Fatal(err)
	}
	for _, piece := range res.Pieces {
		if hit, name := p2.ReIdentifies(piece.Trace.WithUser(""), victim.User); hit {
			t.Fatalf("retrained pipeline published a piece %s re-identifies", name)
		}
	}

	// The original pipeline is unaffected: same config, same background,
	// bit-identical output.
	after, err := p1.Protect(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("original pipeline changed after Retrain")
	}

	// Retrain is equivalent to building a fresh pipeline on the new
	// background with the same options.
	fresh, err := mood.NewPipeline(test.Traces, mood.WithSeed(105))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p2.Protect(victim)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Protect(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Retrain diverged from an equivalent fresh pipeline")
	}
}

func TestPipelineRetrainErrors(t *testing.T) {
	p, test := env(t, 106)
	if _, err := p.Retrain(nil); err == nil {
		t.Fatal("empty background must error")
	}

	custom, err := mood.NewPipeline(test.Traces, mood.WithAttacks(attack.NewAP()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := custom.Retrain(test.Traces); err == nil {
		t.Fatal("Retrain with WithAttacks must refuse (it would mutate the serving attack set)")
	}
}
