// Quickstart: protect one user's mobility trace with MooD.
//
// The example generates a synthetic city (the MDC-like preset), uses the
// first half of the period as the attacker's background knowledge, and
// protects one user's second-half trace. It prints which mechanism (or
// composition) MooD selected and the resulting utility.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mood"
)

func main() {
	// 1. Obtain mobility data. Real deployments load a CSV with
	//    mood.LoadCSVFile; here we simulate a small city.
	dataset, err := mood.GenerateDataset("mdc", "tiny", 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Split chronologically: the first half is the background
	//    knowledge H an attacker is assumed to hold (and that MooD uses
	//    to verify protection); the second half is what users want to
	//    share.
	background, fresh := mood.SplitTrainTest(dataset, 0.5, 20)

	// 3. Build the pipeline: trains AP-, POI- and PIT-attacks on H and
	//    assembles the LPPM portfolio (HMC, Geo-I, TRL).
	pipeline, err := mood.NewPipeline(background.Traces, mood.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline ready: attacks=%v, %d mechanisms\n\n",
		pipeline.Attacks(), len(pipeline.Mechanisms()))

	// 4. Protect one user.
	victim := fresh.Traces[0]
	hit, by := pipeline.ReIdentifies(victim, victim.User)
	fmt.Printf("raw trace of %s: %d records, re-identified=%v (%s)\n",
		victim.User, victim.Len(), hit, by)

	result, err := pipeline.Protect(victim)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Inspect the outcome.
	fmt.Printf("\nMooD outcome for %s:\n", result.User)
	fmt.Printf("  fully protected:   %v\n", result.FullyProtected())
	fmt.Printf("  needed composition: %v, fine-grained: %v\n",
		result.UsedComposition, result.UsedFineGrained)
	fmt.Printf("  records published: %d / %d\n", result.ProtectedRecords(), result.TotalRecords)
	for i, piece := range result.Pieces {
		fmt.Printf("  piece %d: as %q via %s, STD %.0f m, %d records\n",
			i+1, piece.Trace.User, piece.Mechanism, piece.Distortion, piece.Trace.Len())
		// Double-check: no attack links the published piece back.
		if again, name := pipeline.ReIdentifies(piece.Trace.WithUser(""), victim.User); again {
			log.Fatalf("piece still re-identified by %s!", name)
		}
	}
	fmt.Println("\nall published pieces resist every trained attack ✓")
}
