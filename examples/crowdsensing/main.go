// Crowd-sensing: the paper's deployment scenario (§3.4, §4.2).
//
// A noise-mapping campaign collects daily mobility chunks from
// participants. The MooD middleware sits between the phones and the
// campaign database: every upload is protected before storage, and
// fragments that cannot be protected are discarded server-side.
//
// The example starts the middleware in-process, simulates participants
// uploading their days one by one, and finally audits the published
// dataset with the same attacks the middleware defends against.
//
// Run with:
//
//	go run ./examples/crowdsensing
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"mood"
	"mood/internal/service"
)

func main() {
	// Campaign setup: historical data trains the attacks.
	dataset, err := mood.GenerateDataset("mdc", "tiny", 11)
	if err != nil {
		log.Fatal(err)
	}
	background, campaign := mood.SplitTrainTest(dataset, 0.5, 20)

	pipeline, err := mood.NewPipeline(background.Traces, mood.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}

	// Start the middleware (in production: cmd/moodserver). The chain
	// is the production one: panic recovery, request timeout, per-user
	// rate limiting, request metrics — only auth is left off here.
	srv, err := service.New(protector{pipeline},
		service.WithRateLimit(50, 100), // generous: participants upload once a day
		service.WithQueueDepth(32),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	fmt.Printf("middleware listening at %s\n\n", hs.URL)

	// Participants upload day by day. The simulation keeps ground-truth
	// provenance (which pseudonyms belong to whom) by diffing the
	// published dataset after each participant — an auditor's trick a
	// real attacker does not have.
	client := service.NewClient(hs.URL)
	provenance := map[string]string{} // pseudonym -> true participant
	seen := map[string]bool{}
	for i, participant := range campaign.Traces {
		// Most phones stream their backlog of daily chunks as one
		// /v2/traces NDJSON batch — one connection, one rate-limit
		// check, per-chunk results. Odd participants use the per-chunk
		// asynchronous path instead: a 202 + job ID immediately and a
		// poll for the outcome, as a battery-conscious client on the
		// legacy v1 surface would.
		var resps []service.UploadResponse
		var err error
		if i%2 == 1 {
			resps, err = uploadDailyAsync(client, participant)
		} else {
			resps, err = uploadDailyBatch(client, participant)
		}
		if err != nil {
			log.Fatal(err)
		}
		var accepted, rejected int
		for _, r := range resps {
			accepted += r.Accepted
			rejected += r.Rejected
		}
		fmt.Printf("%-14s %2d daily uploads, %5d records accepted, %4d rejected\n",
			participant.User, len(resps), accepted, rejected)

		snapshot, err := client.Dataset()
		if err != nil {
			log.Fatal(err)
		}
		for _, tr := range snapshot.Traces {
			if !seen[tr.User] {
				seen[tr.User] = true
				provenance[tr.User] = participant.User
			}
		}
	}

	// Campaign-side accounting.
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncampaign: %d uploads from %d participants\n", stats.Uploads, stats.Users)
	fmt.Printf("records: %d in, %d published (%.1f%%), %d rejected\n",
		stats.RecordsIn, stats.RecordsPublished,
		100*float64(stats.RecordsPublished)/float64(stats.RecordsIn),
		stats.RecordsRejected)

	// Audit the published dataset with ground truth: a leak is an attack
	// attribution that matches the fragment's true uploader.
	published, err := client.Dataset()
	if err != nil {
		log.Fatal(err)
	}
	leaks := 0
	for _, tr := range published.Traces {
		owner := provenance[tr.User]
		if hit, _ := pipeline.ReIdentifies(tr.WithUser(""), owner); hit {
			leaks++
		}
	}
	fmt.Printf("published: %d pseudonymous traces, correctly re-identified (leaks): %d\n",
		published.NumUsers(), leaks)

	// The operator's view: per-route request metrics from the chain.
	snap, err := client.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	batch := snap.Routes["POST /v2/traces"]
	up := snap.Routes["POST /v1/upload"]
	fmt.Printf("server: %d batch requests + %d legacy uploads, batch avg %.1f ms, max %.1f ms\n",
		batch.Count, up.Count, batch.AvgMillis, batch.MaxMillis)
}

// uploadDailyBatch sends every daily chunk in one streaming batch and
// collects the per-chunk outcomes.
func uploadDailyBatch(c *service.Client, participant mood.Trace) ([]service.UploadResponse, error) {
	results, err := c.UploadChunks(participant, "")
	if err != nil {
		return nil, err
	}
	out := make([]service.UploadResponse, 0, len(results))
	for _, res := range results {
		if res.Status != 200 || res.Result == nil {
			return out, fmt.Errorf("chunk %d: %d %s %s", res.Index, res.Status, res.Code, res.Error)
		}
		out = append(out, *res.Result)
	}
	return out, nil
}

// uploadDailyAsync mirrors the batch path over the v1 202/poll shim.
func uploadDailyAsync(c *service.Client, participant mood.Trace) ([]service.UploadResponse, error) {
	chunks := participant.Chunks(24 * time.Hour)
	out := make([]service.UploadResponse, 0, len(chunks))
	for _, chunk := range chunks {
		j, err := c.UploadAsync(chunk)
		if err != nil {
			return out, err
		}
		done, err := c.WaitJob(j.ID, time.Minute)
		if err != nil {
			return out, err
		}
		if done.State != service.JobDone {
			return out, fmt.Errorf("job %s failed: %s", done.ID, done.Error)
		}
		out = append(out, *done.Result)
	}
	return out, nil
}

// protector adapts the public pipeline to the middleware interface.
type protector struct {
	p *mood.Pipeline
}

func (pr protector) Protect(t mood.Trace) (mood.Result, error) { return pr.p.Protect(t) }
