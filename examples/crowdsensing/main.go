// Crowd-sensing: the paper's deployment scenario (§3.4, §4.2).
//
// A noise-mapping campaign collects daily mobility chunks from
// participants. The MooD middleware sits between the phones and the
// campaign database: every upload is protected before storage, and
// fragments that cannot be protected are discarded server-side.
//
// The example starts the middleware in-process, simulates participants
// uploading their days one by one, and finally audits the published
// dataset with the same attacks the middleware defends against.
//
// Run with:
//
//	go run ./examples/crowdsensing
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"mood"
	"mood/internal/service"
)

func main() {
	// Campaign setup: historical data trains the attacks.
	dataset, err := mood.GenerateDataset("mdc", "tiny", 11)
	if err != nil {
		log.Fatal(err)
	}
	background, campaign := mood.SplitTrainTest(dataset, 0.5, 20)

	pipeline, err := mood.NewPipeline(background.Traces, mood.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}

	// Start the middleware (in production: cmd/moodserver).
	srv, err := service.New(protector{pipeline})
	if err != nil {
		log.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	fmt.Printf("middleware listening at %s\n\n", hs.URL)

	// Participants upload day by day. The simulation keeps ground-truth
	// provenance (which pseudonyms belong to whom) by diffing the
	// published dataset after each participant — an auditor's trick a
	// real attacker does not have.
	client := service.NewClient(hs.URL)
	provenance := map[string]string{} // pseudonym -> true participant
	seen := map[string]bool{}
	for _, participant := range campaign.Traces {
		resps, err := client.UploadDaily(participant)
		if err != nil {
			log.Fatal(err)
		}
		var accepted, rejected int
		for _, r := range resps {
			accepted += r.Accepted
			rejected += r.Rejected
		}
		fmt.Printf("%-14s %2d daily uploads, %5d records accepted, %4d rejected\n",
			participant.User, len(resps), accepted, rejected)

		snapshot, err := client.Dataset()
		if err != nil {
			log.Fatal(err)
		}
		for _, tr := range snapshot.Traces {
			if !seen[tr.User] {
				seen[tr.User] = true
				provenance[tr.User] = participant.User
			}
		}
	}

	// Campaign-side accounting.
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncampaign: %d uploads from %d participants\n", stats.Uploads, stats.Users)
	fmt.Printf("records: %d in, %d published (%.1f%%), %d rejected\n",
		stats.RecordsIn, stats.RecordsPublished,
		100*float64(stats.RecordsPublished)/float64(stats.RecordsIn),
		stats.RecordsRejected)

	// Audit the published dataset with ground truth: a leak is an attack
	// attribution that matches the fragment's true uploader.
	published, err := client.Dataset()
	if err != nil {
		log.Fatal(err)
	}
	leaks := 0
	for _, tr := range published.Traces {
		owner := provenance[tr.User]
		if hit, _ := pipeline.ReIdentifies(tr.WithUser(""), owner); hit {
			leaks++
		}
	}
	fmt.Printf("published: %d pseudonymous traces, correctly re-identified (leaks): %d\n",
		published.NumUsers(), leaks)
}

// protector adapts the public pipeline to the middleware interface.
type protector struct {
	p *mood.Pipeline
}

func (pr protector) Protect(t mood.Trace) (mood.Result, error) { return pr.p.Protect(t) }
