// Data release: the paper's §2.4 "data security expert" workflow.
//
// A security expert must publish a mobility dataset. The naive options —
// one LPPM for everyone, or per-user best single LPPM (HybridLPPM) —
// leave orphan users re-identifiable, and deleting their traces loses a
// large share of the records. This example quantifies that loss and
// shows MooD recovering it.
//
// Run with:
//
//	go run ./examples/datarelease
package main

import (
	"fmt"
	"log"

	"mood"
)

func main() {
	dataset, err := mood.GenerateDataset("privamov", "tiny", 7)
	if err != nil {
		log.Fatal(err)
	}
	background, toPublish := mood.SplitTrainTest(dataset, 0.5, 20)
	fmt.Printf("dataset to publish: %d users, %d records\n\n",
		toPublish.NumUsers(), toPublish.NumRecords())

	pipeline, err := mood.NewPipeline(background.Traces, mood.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	// Strategy 1: HybridLPPM — best protecting single LPPM per user;
	// orphan users' traces must be deleted before release.
	var hybridLost, hybridOrphans int
	for _, tr := range toPublish.Traces {
		res, err := pipeline.ProtectHybrid(tr)
		if err != nil {
			log.Fatal(err)
		}
		hybridLost += res.LostRecords
		if !res.FullyProtected() {
			hybridOrphans++
		}
	}
	fmt.Printf("HybridLPPM: %d orphan users, data loss %.1f%%\n",
		hybridOrphans, 100*float64(hybridLost)/float64(toPublish.NumRecords()))

	// Strategy 2: MooD — compositions + fine-grained protection.
	results, err := pipeline.ProtectDataset(toPublish)
	if err != nil {
		log.Fatal(err)
	}
	var moodOrphans, composed, fineGrained int
	for _, r := range results {
		if !r.FullyProtected() {
			moodOrphans++
		}
		if r.UsedComposition {
			composed++
		}
		if r.UsedFineGrained {
			fineGrained++
		}
	}
	fmt.Printf("MooD:       %d orphan users, data loss %.1f%%\n",
		moodOrphans, 100*pipeline.DataLoss(results))
	fmt.Printf("            %d users needed multi-LPPM composition, %d fine-grained splitting\n\n",
		composed, fineGrained)

	// Release the protected dataset.
	protected := pipeline.Publish("release", results)
	fmt.Printf("published dataset: %d traces, %d records\n",
		protected.NumUsers(), protected.NumRecords())

	// Verify with ground truth: a leak happens only when an attack
	// attributes a published piece to its *actual* owner. (An attack
	// always names someone; wrong attributions are exactly the
	// confusion MooD aims for.)
	leaks := 0
	for _, r := range results {
		for _, piece := range r.Pieces {
			if hit, _ := pipeline.ReIdentifies(piece.Trace.WithUser(""), r.User); hit {
				leaks++
			}
		}
	}
	fmt.Printf("published pieces correctly re-identified (leaks): %d\n", leaks)
}
