// Extensions: the paper's §6 future-work directions, implemented.
//
// This example exercises the extension surface of the library:
//
//  1. a larger LPPM portfolio (k-anonymity generalisation via
//     WithKAnonymity, growing the composition space from 15 to 64);
//  2. the greedy heuristic composition search (fewer attack calls);
//  3. an alternative utility metric (spatial-coverage histogram
//     intersection instead of spatio-temporal distortion);
//  4. protection-kind classification of the outcome (Definitions 4-6).
//
// Run with:
//
//	go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	"mood"
	"mood/internal/metrics"
)

func main() {
	dataset, err := mood.GenerateDataset("mdc", "tiny", 23)
	if err != nil {
		log.Fatal(err)
	}
	background, fresh := mood.SplitTrainTest(dataset, 0.5, 20)

	// Baseline pipeline: the paper's trio, brute-force search, STD.
	baseline, err := mood.NewPipeline(background.Traces, mood.WithSeed(23))
	if err != nil {
		log.Fatal(err)
	}

	// Extended pipeline: + k-anonymity, greedy search, coverage utility.
	extended, err := mood.NewPipeline(background.Traces,
		mood.WithSeed(23),
		mood.WithKAnonymity(4),
		mood.WithGreedySearch(),
		mood.WithUtility(metrics.CoverageUtility{}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline portfolio: %d mechanisms; extended: %d mechanisms\n\n",
		len(baseline.Mechanisms()), len(extended.Mechanisms()))

	run := func(name string, p *mood.Pipeline) {
		results, err := p.ProtectDataset(fresh)
		if err != nil {
			log.Fatal(err)
		}
		var attackCalls int
		var coverage float64
		var covered int
		for _, r := range results {
			attackCalls += r.Stats.AttackCalls
			for _, piece := range r.Pieces {
				coverage += metrics.CoverageUtility{}.Measure(mustTrace(fresh, r.User), piece.Trace) *
					float64(piece.SourceRecords)
				covered += piece.SourceRecords
			}
		}
		c := mood.Classify(results)
		fmt.Printf("%s:\n", name)
		fmt.Printf("  classification: %v\n", c)
		fmt.Printf("  data loss:      %.2f%%\n", 100*p.DataLoss(results))
		fmt.Printf("  attack calls:   %d\n", attackCalls)
		if covered > 0 {
			fmt.Printf("  mean coverage:  %.2f\n", coverage/float64(covered))
		}
		fmt.Println()
	}
	run("baseline (HMC+GeoI+TRL, brute, STD)", baseline)
	run("extended (+KAnon, greedy, coverage)", extended)
}

func mustTrace(d mood.Dataset, user string) mood.Trace {
	t, ok := d.Trace(user)
	if !ok {
		log.Fatalf("missing trace for %s", user)
	}
	return t
}
