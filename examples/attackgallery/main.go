// Attack gallery: how the three re-identification attacks model
// mobility (the paper's Figure 1) and what each one sees.
//
// The example trains AP- (heatmaps), POI- (points of interest) and
// PIT-attacks (mobility Markov chains) on a synthetic city, dumps one
// victim's profile under each model, and re-identifies the victim's
// fresh trace — raw and under Geo-I noise.
//
// Run with:
//
//	go run ./examples/attackgallery
package main

import (
	"fmt"
	"log"
	"time"

	"mood/internal/attack"
	"mood/internal/heatmap"
	"mood/internal/lppm"
	"mood/internal/mathx"
	"mood/internal/mmc"
	"mood/internal/poi"
	"mood/internal/synth"
)

func main() {
	cfg := synth.PrivamovLike(synth.ScaleTiny, 3)
	cfg.NumUsers = 8
	dataset := synth.MustGenerate(cfg)
	background, fresh := dataset.SplitTrainTest(0.5, 20)
	victim := fresh.Traces[len(fresh.Traces)-1]
	history, _ := background.Trace(victim.User)

	fmt.Printf("victim: %s (%d background records, %d fresh records)\n\n",
		victim.User, history.Len(), victim.Len())

	// Model 1: Points of Interest.
	pois := poi.NewExtractor().Extract(history)
	fmt.Printf("POI profile (%d places, 200 m clusters, 1 h dwell):\n", len(pois))
	for i, p := range pois {
		if i == 4 {
			fmt.Printf("  ... and %d more\n", len(pois)-4)
			break
		}
		fmt.Printf("  #%d %v — %d records, %s dwelled\n", i+1, p.Center, p.Records, p.Dwell.Round(time.Minute))
	}

	// Model 2: Mobility Markov Chain.
	chain := mmc.Build(poi.NewExtractor(), history)
	fmt.Printf("\nMMC profile (%d states):\n", chain.NumStates())
	pi := chain.Stationary()
	for i := 0; i < chain.NumStates() && i < 3; i++ {
		fmt.Printf("  state %d: stationary %.2f, transitions %v\n",
			i, pi[i], compact(chain.Trans[i]))
	}

	// Model 3: Heatmap.
	grid := attack.NewAP()
	if err := grid.Train(background.Traces); err != nil {
		log.Fatal(err)
	}
	hm := heatmap.FromTrace(grid.Grid(), history)
	fmt.Printf("\nheatmap profile (800 m cells): %d cells, top cells:\n", hm.Cells())
	for i, cw := range hm.TopCells(3) {
		fmt.Printf("  #%d cell %v — %.0f records (%.0f%%)\n",
			i+1, cw.Cell, cw.Weight, 100*hm.Prob(cw.Cell))
	}

	// Re-identification.
	atks := attack.Set{attack.NewAP(), attack.NewPOIAttack(), attack.NewPIT()}
	if err := attack.TrainAll(atks, background.Traces); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nre-identifying the fresh trace:")
	for _, a := range atks {
		v := a.Identify(victim)
		fmt.Printf("  %-4s -> %-14s (score %.3f, correct=%v)\n",
			a.Name(), v.User, v.Score, v.User == victim.User)
	}

	// Under Geo-I medium noise: heatmaps survive, POI clustering breaks.
	noisy, err := lppm.NewGeoI().Obfuscate(mathx.NewRand(1), victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter Geo-I (eps=%.2g, ~200 m noise):\n", lppm.DefaultEpsilon)
	for _, a := range atks {
		v := a.Identify(noisy)
		if !v.OK {
			fmt.Printf("  %-4s -> no verdict (profile could not be built)\n", a.Name())
			continue
		}
		fmt.Printf("  %-4s -> %-14s (score %.3f, correct=%v)\n",
			a.Name(), v.User, v.Score, v.User == victim.User)
	}
}

func compact(row []float64) []string {
	out := make([]string, len(row))
	for i, p := range row {
		out[i] = fmt.Sprintf("%.2f", p)
	}
	return out
}
