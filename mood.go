// Package mood is a user-centric location-privacy middleware: it
// reproduces MooD ("MObility Data Privacy as Orphan Disease", Khalfoun
// et al., ACM Middleware 2019), a system that protects every user of a
// mobility dataset against re-identification attacks by combining
// off-the-shelf Location Privacy Protection Mechanisms (LPPMs).
//
// The core idea: for each user, try every single LPPM; if none resists
// the attack set, try every ordered composition of LPPMs; if the user is
// still re-identifiable (an "orphan user"), split the trace into daily
// chunks, recursively halve them, and protect each sub-trace
// independently under fresh pseudonyms. Among protecting
// transformations, the one with the lowest spatio-temporal distortion is
// published.
//
// # Quick start
//
//	background := ... // []mood.Trace of past, non-sensitive mobility
//	pipeline, err := mood.NewPipeline(background, mood.WithSeed(42))
//	if err != nil { ... }
//	result, err := pipeline.Protect(todaysTrace)
//	if err != nil { ... }
//	for _, piece := range result.Pieces {
//	    publish(piece.Trace) // resists AP-, POI- and PIT-attacks
//	}
//
// The subpackages under internal/ implement the substrates: trace data
// model, geodesy, POI extraction, heatmaps, Markov chains, the three
// attacks, the three LPPMs, the evaluation harness that regenerates
// every figure of the paper, and a crowd-sensing HTTP middleware.
package mood

import (
	"errors"
	"fmt"
	"time"

	"mood/internal/attack"
	"mood/internal/core"
	"mood/internal/lppm"
	"mood/internal/metrics"
	"mood/internal/trace"
)

// Re-exported data model types. These aliases make the internal packages'
// types part of the public API without duplicating them.
type (
	// Record is a spatio-temporal sample (lat, lon, Unix seconds).
	Record = trace.Record
	// Trace is one user's time-ordered mobility trace.
	Trace = trace.Trace
	// Dataset is a named collection of per-user traces.
	Dataset = trace.Dataset
	// Mechanism is a Location Privacy Protection Mechanism.
	Mechanism = lppm.Mechanism
	// Attack is a user re-identification attack.
	Attack = attack.Attack
	// Result is the outcome of protecting one user.
	Result = core.Result
	// Piece is one published fragment of protected data.
	Piece = core.Piece
	// Utility scores obfuscations (lower STD = better by default).
	Utility = metrics.Utility
)

// NewTrace builds a sorted trace for a user (records are copied).
func NewTrace(user string, records []Record) Trace { return trace.New(user, records) }

// NewDataset builds a dataset sorted by user (duplicate users merge).
func NewDataset(name string, traces []Trace) Dataset { return trace.NewDataset(name, traces) }

// STD computes the paper's spatio-temporal distortion metric (Eq. 8).
func STD(original, obfuscated Trace) float64 { return metrics.STD(original, obfuscated) }

// Pipeline bundles trained attacks, the LPPM portfolio and the MooD
// engine behind one handle. Build it once from background knowledge and
// reuse it; it is safe for concurrent use.
type Pipeline struct {
	engine *core.Engine
	hybrid core.Hybrid
	atks   attack.Set
	lppms  []Mechanism
	opts   []Option // kept so Retrain can rebuild with the same config
}

// options collects the pipeline configuration.
type options struct {
	seed      uint64
	delta     time.Duration
	chunk     time.Duration
	epsilon   float64
	trlRadius float64
	cellSize  float64
	greedy    bool
	kanon     int
	extraMech []Mechanism
	attacks   attack.Set
	utility   Utility
}

// Option configures NewPipeline.
type Option func(*options)

// WithSeed fixes the random seed; a given (seed, user) pair reproduces
// the published output bit for bit.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithDelta overrides δ, the minimum sub-trace duration of the
// fine-grained stage (default 4 h).
func WithDelta(d time.Duration) Option { return func(o *options) { o.delta = d } }

// WithChunk overrides the initial fine-grained slice (default 24 h).
func WithChunk(d time.Duration) Option { return func(o *options) { o.chunk = d } }

// WithEpsilon overrides Geo-I's privacy parameter (default 0.01 /m).
func WithEpsilon(eps float64) Option { return func(o *options) { o.epsilon = eps } }

// WithTRLRadius overrides TRL's assisted-location range (default 1 km).
func WithTRLRadius(r float64) Option { return func(o *options) { o.trlRadius = r } }

// WithCellSize overrides the heatmap cell size used by HMC and the
// AP-attack (default 800 m).
func WithCellSize(s float64) Option { return func(o *options) { o.cellSize = s } }

// WithGreedySearch switches the composition search from the paper's
// brute force to the §6 heuristic (fewer attack evaluations, possibly
// suboptimal utility).
func WithGreedySearch() Option { return func(o *options) { o.greedy = true } }

// WithExtraMechanisms appends custom LPPMs to the portfolio; they take
// part in single and composition search.
func WithExtraMechanisms(ms ...Mechanism) Option {
	return func(o *options) { o.extraMech = append(o.extraMech, ms...) }
}

// WithAttacks replaces the default attack set (AP + POI + PIT). The
// attacks are trained on the pipeline's background knowledge.
func WithAttacks(as ...Attack) Option {
	return func(o *options) { o.attacks = attack.Set(as) }
}

// WithUtility replaces the utility metric of the best-LPPM selection.
func WithUtility(u Utility) Option { return func(o *options) { o.utility = u } }

// WithKAnonymity adds a k-anonymity generalisation mechanism to the
// portfolio (paper §6: MooD extends with further state-of-the-art
// LPPMs). Every location it publishes is coarsened to a region at least
// k background users visit.
func WithKAnonymity(k int) Option { return func(o *options) { o.kanon = k } }

// NewPipeline trains the attack set on background knowledge, builds the
// LPPM portfolio (HMC → Geo-I → TRL, in the paper's distortion order)
// and returns a ready-to-use Pipeline.
//
// The background traces play the paper's H: the attacker-side history
// used both to train the re-identification attacks and as HMC's pool of
// imitation targets. They must contain at least two non-empty users.
func NewPipeline(background []Trace, opts ...Option) (*Pipeline, error) {
	if len(background) == 0 {
		return nil, errors.New("mood: empty background knowledge")
	}
	o := options{
		epsilon:   lppm.DefaultEpsilon,
		trlRadius: lppm.DefaultTRLRadius,
	}
	for _, opt := range opts {
		opt(&o)
	}

	hmc, err := lppm.NewHMC(o.cellSize, background)
	if err != nil {
		return nil, fmt.Errorf("mood: building HMC: %w", err)
	}
	portfolio := []Mechanism{
		hmc,
		lppm.GeoI{Epsilon: o.epsilon},
		lppm.TRL{Radius: o.trlRadius, NumAssisted: 3},
	}
	if o.kanon > 0 {
		ka, err := lppm.NewKAnon(o.kanon, background)
		if err != nil {
			return nil, fmt.Errorf("mood: building KAnon: %w", err)
		}
		portfolio = append(portfolio, ka)
	}
	portfolio = append(portfolio, o.extraMech...)

	atks := o.attacks
	if atks == nil {
		ap := attack.NewAP()
		if o.cellSize > 0 {
			ap.CellSize = o.cellSize
		}
		atks = attack.Set{ap, attack.NewPOIAttack(), attack.NewPIT()}
	}
	if err := attack.TrainAll(atks, background); err != nil {
		return nil, fmt.Errorf("mood: %w", err)
	}

	var search core.SearchStrategy
	if o.greedy {
		search = core.Greedy{}
	}
	stored := make([]Option, len(opts))
	copy(stored, opts)
	return &Pipeline{
		engine: &core.Engine{
			LPPMs:   portfolio,
			Attacks: atks,
			Utility: o.utility,
			Delta:   o.delta,
			Chunk:   o.chunk,
			Seed:    o.seed,
			Search:  search,
		},
		hybrid: core.Hybrid{LPPMs: portfolio, Attacks: atks, Utility: o.utility, Seed: o.seed},
		atks:   atks,
		lppms:  portfolio,
		opts:   stored,
	}, nil
}

// Retrain builds a fresh Pipeline with the same configuration but new
// background knowledge — the paper's §6 extension: "the training set of
// the re-identification attacks can be periodically updated … a dynamic
// protection that evolves with the possible evolutions of the user
// behaviour". The attack set and HMC's imitation pool are rebuilt from
// scratch on the new background; the original Pipeline is untouched and
// keeps serving, so callers can hot-swap atomically.
//
// Pipelines built with WithAttacks cannot be retrained: re-training the
// caller's attack instances would mutate profiles the original Pipeline
// is concurrently reading. Build a new Pipeline with fresh attacks
// instead.
func (p *Pipeline) Retrain(background []Trace) (*Pipeline, error) {
	var o options
	for _, opt := range p.opts {
		opt(&o)
	}
	if o.attacks != nil {
		return nil, errors.New("mood: Retrain cannot rebuild a custom attack set (WithAttacks); build a new Pipeline instead")
	}
	return NewPipeline(background, p.opts...)
}

// Protect runs MooD's Algorithm 1 on one trace.
func (p *Pipeline) Protect(t Trace) (Result, error) { return p.engine.Protect(t) }

// ProtectDataset protects every user of d in parallel.
func (p *Pipeline) ProtectDataset(d Dataset) ([]Result, error) { return p.engine.ProtectDataset(d) }

// ProtectHybrid applies the HybridLPPM baseline [22] instead of MooD:
// best protecting single LPPM per user, no compositions, no splitting.
func (p *Pipeline) ProtectHybrid(t Trace) (Result, error) { return p.hybrid.Protect(t) }

// Publish assembles the protected dataset from results.
func (p *Pipeline) Publish(name string, results []Result) Dataset {
	return core.PublishDataset(name, results)
}

// DataLoss computes the paper's Eq. 7 over a batch of results.
func (p *Pipeline) DataLoss(results []Result) float64 { return core.DataLoss(results) }

// Classification buckets users by how they were protected
// (Definitions 4-6 of the paper).
type Classification = core.Classification

// Classify buckets a batch of results by protection kind.
func Classify(results []Result) Classification { return core.Classify(results) }

// ReIdentifies reports whether any trained attack links t to user (the
// protection predicate of Definitions 4-6).
func (p *Pipeline) ReIdentifies(t Trace, user string) (bool, string) {
	return p.atks.ReIdentifies(t, user)
}

// ReIdent is one (trace, user) pair's outcome of a batch
// re-identification audit (see ReIdentifiesBatch).
type ReIdent = attack.ReIdent

// ReIdentifiesBatch answers ReIdentifies for many (trace, user) pairs
// in one pass, pair-for-pair identical to the scalar predicate but
// restructured for throughput: each trace is frozen once per attack,
// the AP scan runs profile-major with float32 pruning, and the audit
// question stops at the first profile beating the owner's score. The
// service's re-audit pass judges the whole published dataset through
// this in one call.
func (p *Pipeline) ReIdentifiesBatch(ts []Trace, users []string) []ReIdent {
	return p.atks.ReIdentifiesBatch(ts, users)
}

// Mechanisms lists the LPPM portfolio in selection order.
func (p *Pipeline) Mechanisms() []Mechanism {
	out := make([]Mechanism, len(p.lppms))
	copy(out, p.lppms)
	return out
}

// Attacks lists the trained attack names.
func (p *Pipeline) Attacks() []string { return p.atks.Names() }
