module mood

go 1.24
