package mood_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mood"
	"mood/internal/mathx"
)

// env builds a pipeline over a small synthetic background.
func env(t *testing.T, seed uint64, opts ...mood.Option) (*mood.Pipeline, mood.Dataset) {
	t.Helper()
	d, err := mood.GenerateDataset("mdc", "tiny", seed)
	if err != nil {
		t.Fatal(err)
	}
	train, test := mood.SplitTrainTest(d, 0.5, 20)
	opts = append([]mood.Option{mood.WithSeed(seed)}, opts...)
	p, err := mood.NewPipeline(train.Traces, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p, test
}

func TestPipelineProtectEndToEnd(t *testing.T) {
	p, test := env(t, 101)
	for _, tr := range test.Traces {
		res, err := p.Protect(tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.User != tr.User {
			t.Fatalf("result user %q", res.User)
		}
		for _, piece := range res.Pieces {
			if hit, name := p.ReIdentifies(piece.Trace.WithUser(""), tr.User); hit {
				t.Fatalf("piece of %s re-identified by %s", tr.User, name)
			}
		}
	}
}

func TestPipelineProtectDatasetAndPublish(t *testing.T) {
	p, test := env(t, 102)
	results, err := p.ProtectDataset(test)
	if err != nil {
		t.Fatal(err)
	}
	pub := p.Publish("protected", results)
	if err := pub.Validate(); err != nil {
		t.Fatal(err)
	}
	loss := p.DataLoss(results)
	if loss < 0 || loss > 0.2 {
		t.Fatalf("MooD data loss = %v, want near zero", loss)
	}
}

func TestPipelineHybridBaseline(t *testing.T) {
	p, test := env(t, 103)
	moodLoss, hybridLoss := 0, 0
	for _, tr := range test.Traces {
		mr, err := p.Protect(tr)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := p.ProtectHybrid(tr)
		if err != nil {
			t.Fatal(err)
		}
		moodLoss += mr.LostRecords
		hybridLoss += hr.LostRecords
	}
	if moodLoss > hybridLoss {
		t.Fatalf("MooD lost more than Hybrid: %d vs %d", moodLoss, hybridLoss)
	}
}

func TestPipelineOptions(t *testing.T) {
	p, _ := env(t, 104,
		mood.WithDelta(2*time.Hour),
		mood.WithChunk(12*time.Hour),
		mood.WithEpsilon(0.02),
		mood.WithTRLRadius(500),
		mood.WithGreedySearch(),
	)
	if got := len(p.Mechanisms()); got != 3 {
		t.Fatalf("mechanisms = %d", got)
	}
	names := p.Attacks()
	if len(names) != 3 || names[0] != "AP" {
		t.Fatalf("attacks = %v", names)
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := mood.NewPipeline(nil); err == nil {
		t.Fatal("empty background must error")
	}
}

func TestGenerateDataset(t *testing.T) {
	d, err := mood.GenerateDataset("privamov", "tiny", 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() == 0 || d.NumRecords() == 0 {
		t.Fatal("empty dataset")
	}
	if _, err := mood.GenerateDataset("nope", "tiny", 7); err == nil {
		t.Fatal("unknown preset must error")
	}
	if _, err := mood.GenerateDataset("mdc", "huge", 7); err == nil {
		t.Fatal("unknown scale must error")
	}
}

func TestDatasetPresets(t *testing.T) {
	ps := mood.DatasetPresets()
	if len(ps) != 4 {
		t.Fatalf("presets = %v", ps)
	}
	joined := strings.Join(ps, ",")
	for _, want := range []string{"mdc", "privamov", "geolife", "cabspotting"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing preset %q in %v", want, ps)
		}
	}
}

func TestCSVRoundTripThroughFacade(t *testing.T) {
	d, err := mood.GenerateDataset("mdc", "tiny", 9)
	if err != nil {
		t.Fatal(err)
	}
	small := mood.NewDataset("small", d.Traces[:2])
	var buf bytes.Buffer
	if err := mood.WriteCSV(&buf, small); err != nil {
		t.Fatal(err)
	}
	back, err := mood.ReadCSV(&buf, "small")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != small.NumRecords() {
		t.Fatalf("round trip lost records: %d != %d", back.NumRecords(), small.NumRecords())
	}
}

func TestSTDExported(t *testing.T) {
	d, err := mood.GenerateDataset("mdc", "tiny", 10)
	if err != nil {
		t.Fatal(err)
	}
	tr := d.Traces[0]
	if got := mood.STD(tr, tr); got > 0.001 {
		t.Fatalf("STD(T,T) = %v", got)
	}
}

func TestWithExtraMechanisms(t *testing.T) {
	d, err := mood.GenerateDataset("mdc", "tiny", 11)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := mood.SplitTrainTest(d, 0.5, 20)
	p, err := mood.NewPipeline(train.Traces, mood.WithExtraMechanisms(noopMech{}))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Mechanisms()); got != 4 {
		t.Fatalf("mechanisms = %d, want 4", got)
	}
}

// noopMech is a trivial custom mechanism exercising WithExtraMechanisms.
type noopMech struct{}

func (noopMech) Name() string { return "noop" }
func (noopMech) Obfuscate(_ *mathx.Rand, t mood.Trace) (mood.Trace, error) {
	return t.Clone(), nil
}
